// Package tier federates many independent Cells into one keyspace — the
// paper's production shape, where CliqueMap runs as O(10²) cells fronting
// different workloads (§2, §7). A Tier owns N cells plus a Router that
// maps keys to cells over a weighted consistent-hash ring, re-weighting
// on each cell's health-plane state: a paged cell is demoted with
// hysteresis, a cell that stops answering is routed around entirely, and
// either transition shifts only ~1/N of the key range (the demoted
// member's own arcs).
//
// Cells remain independent caches: the tier moves routing, never data. A
// rebalance turns the moved range into cache misses on the new owner —
// never into lost acked writes, because the tier client only acks a
// mutation after the owning cell does, and re-routes before retrying.
package tier

import (
	"context"
	"fmt"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/hashring"
)

// CellRef names one member cell of a tier.
type CellRef struct {
	Name   string
	Cell   *cell.Cell
	Weight float64 // relative capacity; 0 means 1
}

// Options configures a Tier.
type Options struct {
	Cells []CellRef

	// Hash is the tier-level routing hash (independent of each cell's
	// intra-cell hash). nil means hashring.DefaultHash.
	Hash hashring.HashFunc

	// Vnodes is the virtual-node count per unit weight; 0 takes
	// hashring.DefaultVnodes.
	Vnodes int

	// DemotedFactor is the weight multiplier applied to a paged cell;
	// 0 means 0.25 (a demoted cell keeps a quarter of its traffic so
	// probes and residual load keep exercising it).
	DemotedFactor float64

	// HealHold is how many consecutive clean health observations a
	// demoted cell must show before full weight returns; 0 means 3.
	HealHold int

	// FailThreshold is how many consecutive failed client ops mark a
	// cell dead (weight 0, routed around); 0 means 3.
	FailThreshold int
}

func (o Options) withDefaults() Options {
	o.Hash = hashring.OrDefault(o.Hash)
	if o.Vnodes <= 0 {
		o.Vnodes = hashring.DefaultVnodes
	}
	if o.DemotedFactor <= 0 {
		o.DemotedFactor = 0.25
	}
	if o.HealHold <= 0 {
		o.HealHold = 3
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	return o
}

// Tier is a set of named cells behind one router.
type Tier struct {
	opt    Options
	order  []string
	cells  map[string]*cell.Cell
	router *Router
}

// New builds a tier over the given cells and attaches its MethodTier
// snapshot source to every member, so any cell's gateway can answer
// cmstat -tier.
func New(opt Options) (*Tier, error) {
	opt = opt.withDefaults()
	if len(opt.Cells) == 0 {
		return nil, fmt.Errorf("tier: no cells")
	}
	t := &Tier{opt: opt, cells: make(map[string]*cell.Cell, len(opt.Cells))}
	weights := make([]float64, 0, len(opt.Cells))
	for _, cr := range opt.Cells {
		if cr.Name == "" {
			return nil, fmt.Errorf("tier: unnamed cell")
		}
		if cr.Cell == nil {
			return nil, fmt.Errorf("tier: cell %q is nil", cr.Name)
		}
		if _, dup := t.cells[cr.Name]; dup {
			return nil, fmt.Errorf("tier: duplicate cell name %q", cr.Name)
		}
		w := cr.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return nil, fmt.Errorf("tier: cell %q has negative weight", cr.Name)
		}
		t.cells[cr.Name] = cr.Cell
		t.order = append(t.order, cr.Name)
		weights = append(weights, w)
	}
	t.router = newRouter(t.order, weights, opt.Vnodes, opt.DemotedFactor, opt.HealHold, opt.FailThreshold)
	src := func() []byte { return t.router.Snapshot().Marshal() }
	for _, c := range t.cells {
		c.SetTierSource(src)
	}
	return t, nil
}

// Cells returns the member names in configuration order.
func (t *Tier) Cells() []string { return append([]string(nil), t.order...) }

// Cell returns a member by name (nil if unknown).
func (t *Tier) Cell(name string) *cell.Cell { return t.cells[name] }

// Router returns the tier's router.
func (t *Tier) Router() *Router { return t.router }

// Hash returns the tier-level KeyHash for key.
func (t *Tier) Hash(key []byte) hashring.KeyHash { return t.opt.Hash(key) }

// Owner returns the cell currently owning key ("" if none routable).
func (t *Tier) Owner(key []byte) string {
	n, _ := t.router.Route(t.opt.Hash(key))
	return n
}

// Observe feeds every live cell's current health evaluation into the
// router's rebalance state machine. Call it on whatever cadence drives
// the health planes (typically after prober rounds); dead cells are
// skipped until Revive.
func (t *Tier) Observe() {
	for _, n := range t.order {
		if t.router.byNameDead(n) {
			continue
		}
		t.router.ApplyHealth(n, t.cells[n].Health().Evaluate().Worst())
	}
}

// ProbeRound drives one canary prober round on every live cell, then
// applies the resulting health states — the all-in-one tick for
// workloads that let the tier own probing.
func (t *Tier) ProbeRound(ctx context.Context) {
	for _, n := range t.order {
		if t.router.byNameDead(n) {
			continue
		}
		t.router.ApplyHealth(n, t.cells[n].Prober().Round(ctx).Worst())
	}
}

// byNameDead reports whether a member is currently marked dead.
func (r *Router) byNameDead(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byName[name]
	return m == nil || m.dead
}

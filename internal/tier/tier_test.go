package tier

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/config"
	"cliquemap/internal/hashring"
	"cliquemap/internal/health"
)

// tinyHealth shrinks the SLO windows to virtual-millisecond scale so a
// brownout pages within a few prober rounds (same recipe as the cell-
// level health e2e tests).
func tinyHealth() health.Config {
	return health.Config{
		FastWindowNs: uint64(20 * time.Millisecond),
		SlowWindowNs: uint64(200 * time.Millisecond),
		BucketNs:     uint64(1 * time.Millisecond),
	}
}

func newTestTier(t *testing.T, names ...string) *Tier {
	t.Helper()
	var refs []CellRef
	for _, n := range names {
		c, err := cell.New(cell.Options{Shards: 3, Spares: 1, Mode: config.R32, Health: tinyHealth()})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, CellRef{Name: n, Cell: c})
	}
	tr, err := New(Options{Cells: refs})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testKey(i int) []byte { return []byte(fmt.Sprintf("tier-key-%05d", i)) }

func TestTierRoutesAndServes(t *testing.T) {
	tr := newTestTier(t, "us", "eu", "asia")
	cl, err := tr.NewClient(ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const n = 300
	perCell := map[string]int{}
	for i := 0; i < n; i++ {
		key := testKey(i)
		if err := cl.Set(ctx, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		perCell[tr.Owner(key)]++
	}
	for _, name := range tr.Cells() {
		if perCell[name] == 0 {
			t.Errorf("cell %s owns no keys out of %d", name, n)
		}
	}
	for i := 0; i < n; i++ {
		val, found, err := cl.Get(ctx, testKey(i))
		if err != nil || !found {
			t.Fatalf("get %d: found=%v err=%v", i, found, err)
		}
		if want := fmt.Sprintf("v%d", i); string(val) != want {
			t.Fatalf("get %d: %q, want %q", i, val, want)
		}
	}

	// The key must physically live on the owning cell: a direct per-cell
	// read on the owner finds it.
	for i := 0; i < 50; i++ {
		key := testKey(i)
		owner := tr.Owner(key)
		_, found, err := cl.CellClient(owner).Get(ctx, key)
		if err != nil || !found {
			t.Fatalf("key %d not on its owner %s: found=%v err=%v", i, owner, found, err)
		}
	}
}

// TestTierKillCellReroutes is the zero-lost-acked-writes oracle: crash
// every shard of one cell mid-workload, keep writing through the tier
// client, and verify (a) the router marks the cell dead and re-routes,
// (b) every key's LAST acked write is readable afterwards, and (c) only
// keys the dead cell owned changed owner.
func TestTierKillCellReroutes(t *testing.T) {
	tr := newTestTier(t, "us", "eu", "asia")
	cl, err := tr.NewClient(ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const n = 200
	acked := map[string]string{} // key → last acked value
	write := func(round int) {
		for i := 0; i < n; i++ {
			key, val := testKey(i), fmt.Sprintf("r%d-v%d", round, i)
			if err := cl.Set(ctx, key, []byte(val)); err != nil {
				// Not acked — the previous acked value must still rule.
				continue
			}
			acked[string(key)] = val
		}
	}
	write(0)

	ringBefore := tr.Router().Ring()
	verBefore := tr.Router().Version()

	// Kill asia: every shard crashes, clients start failing over.
	victim := tr.Cell("asia")
	for s := 0; s < 3; s++ {
		victim.Crash(s)
	}

	// Keep writing: ops against the dead cell fail, push it over the
	// dead threshold, and retry onto the new owner.
	write(1)
	write(2)

	if v := tr.Router().Version(); v == verBefore {
		t.Fatal("ring version did not change after cell death")
	}
	snap := tr.Router().Snapshot()
	for _, c := range snap.Cells {
		if c.Name == "asia" {
			if c.State != "dead" || c.WeightMilli != 0 || c.OwnedPpm != 0 {
				t.Fatalf("dead cell state %+v", c)
			}
		}
	}

	// Every acked write must be readable — the reroute may cost misses
	// for keys never re-acked, but write rounds 1-2 re-acked everything.
	for key, want := range acked {
		val, found, err := cl.Get(ctx, []byte(key))
		if err != nil {
			t.Fatalf("get %q after kill: %v", key, err)
		}
		if !found {
			t.Fatalf("lost acked write: %q missing", key)
		}
		if string(val) != want {
			t.Fatalf("acked write regressed: %q = %q, want %q", key, val, want)
		}
	}

	// Movement check: only asia's former range moved.
	ringAfter := tr.Router().Ring()
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		h := hashring.DefaultHash(testKey(i))
		was, now := ringBefore.OwnerName(h), ringAfter.OwnerName(h)
		if was != now {
			moved++
			if was != "asia" {
				t.Fatalf("key %d moved from untouched cell %s", i, was)
			}
		}
	}
	if frac := float64(moved) / float64(total); frac > 1.0/3+0.06 {
		t.Errorf("kill moved %.3f of keyspace, want ≤ 1/3 + slack", frac)
	}
	if cl.Metrics().DeadFailovers.Load() == 0 {
		t.Error("no dead-failover retry recorded")
	}
}

// TestTierHealthDemoteHysteresis drives the full incident: brownout one
// cell until its plane pages, verify the router demotes it (bounded key
// movement, ring version bump), heal, and verify full weight returns
// only after HealHold consecutive clean rounds.
func TestTierHealthDemoteHysteresis(t *testing.T) {
	tr := newTestTier(t, "us", "eu", "asia")
	ctx := context.Background()

	// Baseline probe rounds: all cells Ok, no demotions.
	for i := 0; i < 3; i++ {
		tr.ProbeRound(ctx)
	}
	verBefore := tr.Router().Version()
	ringBefore := tr.Router().Ring()

	// Brownout every eu shard past the 1ms GET SLO.
	ch := tr.Cell("eu").Chaos()
	for s := 0; s < 3; s++ {
		ch.Brownout(s, uint64(2*time.Millisecond))
	}
	demoted := false
	for i := 0; i < 40 && !demoted; i++ {
		tr.ProbeRound(ctx)
		for _, c := range tr.Router().Snapshot().Cells {
			if c.Name == "eu" && c.Demoted {
				demoted = true
			}
		}
	}
	if !demoted {
		t.Fatal("paged cell was never demoted")
	}
	if tr.Router().Version() == verBefore {
		t.Fatal("demotion did not rebuild the ring")
	}

	// Bounded movement: ≤ 1/N + slack, and only out of eu.
	ringDemoted := tr.Router().Ring()
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		h := hashring.DefaultHash(testKey(i))
		was, now := ringBefore.OwnerName(h), ringDemoted.OwnerName(h)
		if was != now {
			moved++
			if was != "eu" {
				t.Fatalf("demotion moved key from untouched cell %s", was)
			}
		}
	}
	if frac := float64(moved) / float64(total); frac > 1.0/3+0.06 {
		t.Errorf("demotion moved %.3f of keyspace, want ≤ 1/3 + slack", frac)
	}

	// Heal. Demotion must persist until HealHold consecutive clean
	// evaluations — the plane itself also holds the page until its fast
	// window drains, so count rounds from the first clean one.
	for s := 0; s < 3; s++ {
		ch.Brownout(s, 0)
	}
	cleanRounds := 0
	restored := false
	for i := 0; i < 300 && !restored; i++ {
		tr.ProbeRound(ctx)
		snap := tr.Router().Snapshot()
		for _, c := range snap.Cells {
			if c.Name == "eu" {
				if c.Demoted {
					if c.State == "ok" {
						cleanRounds++
					}
				} else {
					restored = true
				}
			}
		}
	}
	if !restored {
		t.Fatal("healed cell never restored to full weight")
	}
	if cleanRounds < tr.opt.HealHold-1 {
		t.Errorf("restored after %d clean rounds, want ≥ %d (hysteresis)", cleanRounds, tr.opt.HealHold-1)
	}
	var euW uint64
	for _, c := range tr.Router().Snapshot().Cells {
		if c.Name == "eu" {
			euW = c.WeightMilli
		}
	}
	if euW != 1000 {
		t.Errorf("restored weight %d milli, want 1000", euW)
	}
}

func TestTierFollowerReads(t *testing.T) {
	tr := newTestTier(t, "us", "eu")
	ctx := context.Background()

	// Writer colocated with us; reader colocated with us too, follower
	// reads on. Pick a key owned by eu so reads cross cells.
	writer, err := tr.NewClient(ClientOptions{Local: "us"})
	if err != nil {
		t.Fatal(err)
	}
	// The fabric clock tracks wall time, so the bound must be wide
	// enough that two adjacent reads land inside it even under -race
	// scheduling noise, yet short enough to cross with one sleep.
	const staleBound = 500 * time.Millisecond
	reader, err := tr.NewClient(ClientOptions{
		Local: "us", FollowerReads: true,
		StaleBoundNs: uint64(staleBound),
	})
	if err != nil {
		t.Fatal(err)
	}
	var key []byte
	for i := 0; ; i++ {
		k := testKey(i)
		if tr.Owner(k) == "eu" {
			key = k
			break
		}
	}

	if err := writer.Set(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// First read: follower miss → owner fetch → populate local cache.
	val, found, err := reader.Get(ctx, key)
	if err != nil || !found || !bytes.Equal(val, []byte("v1")) {
		t.Fatalf("first read: %q %v %v", val, found, err)
	}
	if reader.Metrics().FollowerMisses.Load() != 1 {
		t.Fatalf("expected one follower miss, got %d", reader.Metrics().FollowerMisses.Load())
	}

	// Second read inside the bound: served locally.
	if _, _, err := reader.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	if reader.Metrics().FollowerHits.Load() != 1 {
		t.Fatalf("expected one follower hit, got %d", reader.Metrics().FollowerHits.Load())
	}

	// The owner moves the value forward; the follower copy is now stale.
	if err := writer.Set(ctx, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}

	// Inside the stale bound the follower may legally serve v1 (that is
	// the contract). Wait out the bound, then the read must revalidate
	// and return v2.
	time.Sleep(staleBound + 100*time.Millisecond)
	val, found, err = reader.Get(ctx, key)
	if err != nil || !found {
		t.Fatalf("stale read: %v %v", found, err)
	}
	if !bytes.Equal(val, []byte("v2")) {
		t.Fatalf("stale follower served %q after bound, want revalidated v2", val)
	}
	if reader.Metrics().FollowerRefreshes.Load() == 0 {
		t.Error("no follower refresh recorded")
	}

	// Erase through the reader invalidates its local copy too.
	if err := reader.Erase(ctx, key); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := reader.Get(ctx, key); found {
		t.Error("erased key still found via follower path")
	}
}

// TestTierResizeKeepsCellAlive is the regression test for the federation
// tier's deadliest false positive: an online resize bumps the cell's
// config epoch, and if any tier-client path keeps using the stale
// ConfigID (the follower revalidation RPC did), every op against that
// cell fails and FailThreshold consecutive failures mark a perfectly
// healthy cell dead. Routine maintenance must never kill a cell.
func TestTierResizeKeepsCellAlive(t *testing.T) {
	tr := newTestTier(t, "us", "eu", "asia")
	ctx := context.Background()
	writer, err := tr.NewClient(ClientOptions{Local: "us"})
	if err != nil {
		t.Fatal(err)
	}
	reader, err := tr.NewClient(ClientOptions{
		Local: "us", FollowerReads: true,
		StaleBoundNs: uint64(20 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	for i := 0; i < n; i++ {
		if err := writer.Set(ctx, testKey(i), []byte("v1")); err != nil {
			t.Fatalf("pre-resize set %d: %v", i, err)
		}
		if _, _, err := reader.Get(ctx, testKey(i)); err != nil {
			t.Fatalf("pre-resize get %d: %v", i, err)
		}
	}

	if err := tr.Cell("eu").Resize(ctx, 4); err != nil {
		t.Fatalf("resize: %v", err)
	}
	// Let every follower entry age past the bound so each read takes the
	// revalidation path against the (new-epoch) owner.
	time.Sleep(40 * time.Millisecond)

	for i := 0; i < n; i++ {
		if _, _, err := reader.Get(ctx, testKey(i)); err != nil {
			t.Fatalf("post-resize get %d: %v", i, err)
		}
		if err := writer.Set(ctx, testKey(i), []byte("v2")); err != nil {
			t.Fatalf("post-resize set %d: %v", i, err)
		}
	}
	for _, c := range tr.Router().Snapshot().Cells {
		if c.State != "ok" || c.Demoted {
			t.Errorf("cell %s is %s (demoted=%v) after a routine resize", c.Name, c.State, c.Demoted)
		}
	}
	if v := tr.Router().Version(); v != 1 {
		t.Errorf("ring version %d after resize, want 1 (no rebuilds)", v)
	}
}

// TestTierConcurrentOpsAndReweight is the -race hammer at tier level:
// clients route and mutate while health flaps demote/restore cells and
// weights change.
func TestTierConcurrentOpsAndReweight(t *testing.T) {
	tr := newTestTier(t, "us", "eu", "asia")
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 3; g++ {
		cl, err := tr.NewClient(ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *Client, g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := testKey(g*1000 + i%100)
				if err := cl.Set(ctx, key, []byte("v")); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				if _, _, err := cl.Get(ctx, key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(cl, g)
	}

	r := tr.Router()
	for i := 0; i < 150; i++ {
		switch i % 3 {
		case 0:
			r.ApplyHealth("eu", health.Page)
		case 1:
			for k := 0; k < tr.opt.HealHold; k++ {
				r.ApplyHealth("eu", health.Ok)
			}
		case 2:
			r.SetWeight("asia", 0.5+float64(i%4)*0.25)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTierValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("empty tier accepted")
	}
	c, err := cell.New(cell.Options{Shards: 3, Mode: config.R32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Cells: []CellRef{{Name: "", Cell: c}}}); err == nil {
		t.Error("unnamed cell accepted")
	}
	if _, err := New(Options{Cells: []CellRef{{Name: "a", Cell: c}, {Name: "a", Cell: c}}}); err == nil {
		t.Error("duplicate cell name accepted")
	}
	tr, err := New(Options{Cells: []CellRef{{Name: "a", Cell: c}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.NewClient(ClientOptions{Local: "nope"}); err == nil {
		t.Error("unknown local cell accepted")
	}
}

package tier

import (
	"sync"
	"sync/atomic"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/hashring"
	"cliquemap/internal/health"
)

// Router maps keys to member cells through a weighted consistent-hash
// ring and owns the rebalance policy: a cell whose health plane pages is
// demoted (weight × DemotedFactor) immediately, restored only after
// HealHold consecutive clean observations — asymmetric hysteresis so one
// good probe round cannot flap the ring back while the cell is still
// sick. A cell that fails FailThreshold consecutive client ops is routed
// around entirely (weight 0) until revived.
//
// Mutation is rebuild-and-swap: the current ring lives behind an atomic
// pointer, so Route is lock-free and concurrent with any re-weight.
type Router struct {
	mu sync.Mutex // guards members + rebuilds

	vnodes        int
	demotedFactor float64
	healHold      int
	failThreshold int

	order  []string
	byName map[string]*memberState

	ring    atomic.Pointer[hashring.WeightedRing]
	version atomic.Uint64 // bumps on every rebuild
}

type memberState struct {
	name       string
	base       float64 // configured weight
	factor     float64 // weight multiplier applied while demoted
	state      string  // last observed health state, for display
	demoted    bool
	dead       bool
	okStreak   int // consecutive clean observations while demoted
	failStreak int // consecutive client op failures
}

func (m *memberState) live() float64 {
	switch {
	case m.dead:
		return 0
	case m.demoted:
		return m.base * m.factor
	default:
		return m.base
	}
}

func newRouter(names []string, weights []float64, vnodes int, demotedFactor float64, healHold, failThreshold int) *Router {
	r := &Router{
		vnodes:        vnodes,
		demotedFactor: demotedFactor,
		healHold:      healHold,
		failThreshold: failThreshold,
		order:         append([]string(nil), names...),
		byName:        make(map[string]*memberState, len(names)),
	}
	for i, n := range names {
		r.byName[n] = &memberState{name: n, base: weights[i], state: "ok", factor: demotedFactor}
	}
	r.rebuildLocked()
	return r
}

// rebuildLocked swaps in a fresh ring reflecting current live weights.
// Caller holds mu.
func (r *Router) rebuildLocked() {
	ms := make([]hashring.Member, len(r.order))
	for i, n := range r.order {
		ms[i] = hashring.Member{Name: n, Weight: r.byName[n].live()}
	}
	r.ring.Store(hashring.BuildWeighted(ms, r.vnodes))
	r.version.Add(1)
}

// Ring returns the current ring snapshot (immutable; safe to hold).
func (r *Router) Ring() *hashring.WeightedRing { return r.ring.Load() }

// Version returns the ring version, bumped on every rebuild.
func (r *Router) Version() uint64 { return r.version.Load() }

// Route returns the owning cell for h, or ok=false if no cell is
// routable. Lock-free.
func (r *Router) Route(h hashring.KeyHash) (name string, ok bool) {
	n := r.ring.Load().OwnerName(h)
	return n, n != ""
}

// ApplyHealth feeds one health observation for a cell into the rebalance
// state machine. Page demotes immediately; while demoted, HealHold
// consecutive Ok observations restore full weight (Warn neither demotes
// nor counts as clean). Dead cells ignore health traffic until Revive.
func (r *Router) ApplyHealth(name string, st health.State) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byName[name]
	if m == nil || m.dead {
		return
	}
	m.state = st.String()
	switch st {
	case health.Page:
		m.okStreak = 0
		if !m.demoted {
			m.demoted = true
			r.rebuildLocked()
		}
	case health.Ok:
		if m.demoted {
			m.okStreak++
			if m.okStreak >= r.healHold {
				m.demoted = false
				m.okStreak = 0
				r.rebuildLocked()
			}
		}
	default: // Warn: hold position — neither demote further nor heal
	}
}

// NoteFailure records one failed client op against a cell. Crossing
// FailThreshold consecutive failures marks the cell dead and rebuilds
// the ring without it; returns true when that transition fired (the
// caller's cue to re-route and retry).
func (r *Router) NoteFailure(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byName[name]
	if m == nil || m.dead {
		return false
	}
	m.failStreak++
	if m.failStreak >= r.failThreshold {
		m.dead = true
		m.state = "dead"
		r.rebuildLocked()
		return true
	}
	return false
}

// NoteSuccess resets a cell's consecutive-failure streak.
func (r *Router) NoteSuccess(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byName[name]; m != nil {
		m.failStreak = 0
	}
}

// Revive returns a dead cell to service at full weight (the operator's
// lever after a restart); also clears any demotion.
func (r *Router) Revive(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byName[name]
	if m == nil || (!m.dead && !m.demoted) {
		return
	}
	m.dead = false
	m.demoted = false
	m.okStreak = 0
	m.failStreak = 0
	m.state = "ok"
	r.rebuildLocked()
}

// SetWeight changes a cell's configured base weight (capacity change,
// e.g. after a Resize grew it) and rebuilds.
func (r *Router) SetWeight(name string, w float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byName[name]
	if m == nil {
		return
	}
	m.base = w
	r.rebuildLocked()
}

// Snapshot renders the router state as its MethodTier wire frame.
func (r *Router) Snapshot() proto.TierResp {
	r.mu.Lock()
	defer r.mu.Unlock()
	ring := r.ring.Load()
	shares := ring.Shares()
	resp := proto.TierResp{
		RingVersion: r.version.Load(),
		Vnodes:      uint64(r.vnodes),
	}
	for i, n := range r.order {
		m := r.byName[n]
		resp.Cells = append(resp.Cells, proto.TierCell{
			Name:        n,
			WeightMilli: uint64(m.live()*1000 + 0.5),
			BaseMilli:   uint64(m.base*1000 + 0.5),
			State:       m.state,
			Demoted:     m.demoted,
			OwnedPpm:    uint64(shares[i]*1e6 + 0.5),
		})
	}
	return resp
}

package tier

import (
	"context"
	"encoding/binary"
	"errors"
	"sync/atomic"

	"cliquemap/internal/core/client"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/fabric"
	"cliquemap/internal/hashring"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
	"cliquemap/internal/truetime"
)

// ErrNoCells means the router has no routable cell (everything dead or
// zero-weight).
var ErrNoCells = errors.New("tier: no routable cells")

// followerPrefix reserves the local-cell namespace holding follower-read
// cache entries (wrapped with version + freshness stamp), keeping them
// disjoint from authoritative entries the cell owns outright. It aliases
// layout.TierKeyPrefix so the backend's heat sketch can recognize (and
// exclude) follower-cache traffic without importing this package.
const followerPrefix = layout.TierKeyPrefix

// ClientOptions configures a tier client.
type ClientOptions struct {
	// Local names the cell this client is co-located with — the follower
	// cache for keys owned elsewhere. "" means the tier's first cell.
	Local string

	// FollowerReads serves GETs for remotely-owned keys from the local
	// cell when a cached copy is younger than StaleBound; older copies
	// are revalidated against the owner by version (TAO-style leader/
	// follower, bounded staleness instead of invalidation fan-out).
	FollowerReads bool

	// StaleBoundNs is the follower-cache freshness bound on the LOCAL
	// cell's virtual clock; 0 means 50ms.
	StaleBoundNs uint64

	// Retries is the tier-level re-route budget per op, on top of each
	// per-cell client's own retry loop. 0 means FailThreshold+1, enough
	// for one client to push a dying cell over the dead threshold and
	// still land its op on the new owner.
	Retries int

	// PerCell templates the per-cell client options (strategy, R,
	// observer, ...). ID/HostID are assigned per cell as usual.
	PerCell client.Options

	// Tracer records completed tier-level ops: one trace per user op,
	// carrying the tier spans (tier-route, ring-lookup, tier-forward,
	// follower-cache-hit, follower-revalidate) plus every span the
	// per-cell legs contributed — follower cell and owner cell on the
	// same op id. nil means the LOCAL cell's tracer, so the co-located
	// cell's MethodDebug (cmstat -trace) shows the federated op
	// end-to-end; the per-cell clients see the tier's span context in
	// ctx and contribute spans instead of double-recording.
	Tracer *trace.Tracer
}

// Outcome classifies how the tier served one op — the tier edge's
// latency axis: each class has its own histogram because their latency
// regimes differ by an order of magnitude (a local follower hit never
// leaves the cell; a forward pays a full remote quorum).
type Outcome uint8

const (
	// OutcomeOwnerDirect: the co-located cell owns the key; the op ran
	// locally with no tier hop.
	OutcomeOwnerDirect Outcome = iota
	// OutcomeFollowerHit: a remotely-owned GET served from the local
	// follower cache — fresh inside the staleness bound, or stale but
	// confirmed current by the owner's version.
	OutcomeFollowerHit
	// OutcomeRevalidateMiss: the follower cache could not serve the
	// value — no usable entry, or the owner held a newer version — so
	// the op paid an owner-cell round trip.
	OutcomeRevalidateMiss
	// OutcomeForward: the op went to a remote owner outside the
	// follower path (all mutations, and GETs with FollowerReads off).
	OutcomeForward
	numOutcomes
)

// String names the outcome class.
func (o Outcome) String() string {
	switch o {
	case OutcomeOwnerDirect:
		return "owner-direct"
	case OutcomeFollowerHit:
		return "follower-hit"
	case OutcomeRevalidateMiss:
		return "revalidate-miss"
	}
	return "forward"
}

// Outcomes lists the outcome classes in display order.
func Outcomes() []Outcome {
	return []Outcome{OutcomeOwnerDirect, OutcomeFollowerHit, OutcomeRevalidateMiss, OutcomeForward}
}

// OutcomeStat summarizes one outcome class's latency histogram.
type OutcomeStat struct {
	Outcome Outcome
	Count   uint64
	MeanNs  uint64
	P50Ns   uint64
	P99Ns   uint64
	MaxNs   uint64
}

// Metrics counts tier-client outcomes. Read with ClientMetrics.
type Metrics struct {
	Ops               atomic.Uint64 // tier-level ops attempted
	Reroutes          atomic.Uint64 // retries after a failed cell op
	DeadFailovers     atomic.Uint64 // retries that followed a cell-death rebuild
	FollowerHits      atomic.Uint64 // served fresh from the local follower cache
	FollowerRevalids  atomic.Uint64 // stale entry confirmed current by owner version
	FollowerRefreshes atomic.Uint64 // stale entry replaced by a newer owner value
	FollowerMisses    atomic.Uint64 // no usable local entry; fetched from owner
}

// Client routes ops across a tier's cells: GETs and mutations go to the
// key's owning cell, mutations ack only after the owner does, and a
// failed cell is reported to the router and retried against the next
// owner — that retry-after-reroute is what keeps acked writes readable
// through a cell death.
type Client struct {
	t     *Tier
	opt   ClientOptions
	cls   map[string]*client.Client
	local *client.Client
	now   func() uint64 // local cell's virtual clock
	m     Metrics

	tracer   *trace.Tracer
	cellIdx  map[string]uint32 // cell name → configuration-order index, for span args
	outcomes [numOutcomes]stats.Histogram
}

// NewClient builds a tier client with one per-cell client each.
func (t *Tier) NewClient(opt ClientOptions) (*Client, error) {
	if opt.Local == "" {
		opt.Local = t.order[0]
	}
	if t.cells[opt.Local] == nil {
		return nil, errors.New("tier: unknown local cell " + opt.Local)
	}
	if opt.StaleBoundNs == 0 {
		opt.StaleBoundNs = 50e6
	}
	if opt.Retries <= 0 {
		opt.Retries = t.opt.FailThreshold + 1
	}
	c := &Client{t: t, opt: opt, cls: make(map[string]*client.Client, len(t.order))}
	for _, n := range t.order {
		c.cls[n] = t.cells[n].NewClient(opt.PerCell)
	}
	c.local = c.cls[opt.Local]
	c.now = t.cells[opt.Local].Fabric.NowNs
	c.tracer = opt.Tracer
	if c.tracer == nil {
		c.tracer = t.cells[opt.Local].Tracer
	}
	c.cellIdx = make(map[string]uint32, len(t.order))
	for i, n := range t.order {
		c.cellIdx[n] = uint32(i)
	}
	return c, nil
}

// Metrics returns the client's outcome counters.
func (c *Client) Metrics() *Metrics { return &c.m }

// Tracer returns the tier-edge tracer tier ops record into.
func (c *Client) Tracer() *trace.Tracer { return c.tracer }

// OutcomeHist returns the live latency histogram for one outcome class.
func (c *Client) OutcomeHist(o Outcome) *stats.Histogram { return &c.outcomes[o] }

// OutcomeStats summarizes the per-outcome-class latency histograms
// (classes with traffic only).
func (c *Client) OutcomeStats() []OutcomeStat {
	var out []OutcomeStat
	for _, o := range Outcomes() {
		h := c.outcomes[o].Snapshot()
		if h.Count() == 0 {
			continue
		}
		q := h.Quantiles(50, 99)
		out = append(out, OutcomeStat{
			Outcome: o, Count: h.Count(), MeanNs: uint64(h.Mean()),
			P50Ns: q[0], P99Ns: q[1], MaxNs: h.Max(),
		})
	}
	return out
}

// traceOp opens the tier-level span context for one user op. The per-cell
// clients see it in ctx and contribute their spans to THIS op instead of
// recording their own — the cross-cell propagation mechanism: over TCP
// the wire frames carry this op id into the remote cell, and every leg's
// spans come back on its OpTrace.
func (c *Client) traceOp(ctx context.Context, k trace.Kind) (*trace.SpanContext, context.Context, *fabric.OpTrace) {
	if c.tracer == nil || trace.FromContext(ctx) != nil {
		return nil, ctx, nil
	}
	sc := &trace.SpanContext{OpID: c.tracer.NextID(), Kind: k}
	tr := &fabric.OpTrace{Spans: make([]fabric.Span, 0, 12)}
	return sc, trace.NewContext(ctx, sc), tr
}

// finish records one completed tier op into the tier-edge tracer and its
// outcome-class histogram. Nil-safe: a nil sc (tracing off, or an
// enclosing op already tracing) records nothing.
func (c *Client) finish(sc *trace.SpanContext, total *fabric.OpTrace, k trace.Kind, tp trace.Transport, attempts uint32, outcome Outcome, err error) {
	if sc == nil || err != nil {
		return
	}
	c.outcomes[outcome].Record(total.Ns)
	c.tracer.Record(sc.OpID, k, tp, attempts, *total)
}

// routeTraced is route plus the ring-lookup span.
func (c *Client) routeTraced(h hashring.KeyHash, total *fabric.OpTrace, attempt int) (string, error) {
	n, ok := c.t.router.Route(h)
	if total != nil {
		total.Annotate(trace.SpanRingLookup, uint32(c.t.router.Version()), total.Ns, 0)
		total.Annotate(trace.SpanTierRoute, uint32(attempt), total.Ns, 0)
	}
	if !ok {
		return "", ErrNoCells
	}
	return n, nil
}

// route resolves key's owning cell, or ErrNoCells.
func (c *Client) route(h hashring.KeyHash) (string, error) {
	n, ok := c.t.router.Route(h)
	if !ok {
		return "", ErrNoCells
	}
	return n, nil
}

// noteFailed reports a failed op on owner and counts the retry flavor.
func (c *Client) noteFailed(owner string) {
	if c.t.router.NoteFailure(owner) {
		c.m.DeadFailovers.Add(1)
	}
	c.m.Reroutes.Add(1)
}

// Get looks up key on its owning cell; with FollowerReads, remotely-
// owned keys are served from the local cell inside the staleness bound.
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	c.m.Ops.Add(1)
	h := c.t.opt.Hash(key)
	sc, ctx, total := c.traceOp(ctx, trace.KindGet)
	var lastErr error = ErrNoCells
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		owner, err := c.routeTraced(h, total, attempt)
		if err != nil {
			return nil, false, err
		}
		if c.opt.FollowerReads && owner != c.opt.Local {
			val, found, outcome, err := c.followerGet(ctx, owner, key, total)
			if err == nil {
				c.t.router.NoteSuccess(owner)
				c.finish(sc, total, trace.KindGet, c.local.Transport(), uint32(attempt+1), outcome, nil)
				return val, found, nil
			}
			lastErr = err
		} else {
			outcome := OutcomeOwnerDirect
			var val []byte
			var found bool
			if total != nil {
				start := total.Ns
				var tr fabric.OpTrace
				val, found, tr, err = c.cls[owner].GetTraced(ctx, key)
				total.Sequence(tr)
				if owner != c.opt.Local {
					outcome = OutcomeForward
					total.Annotate(trace.SpanTierForward, c.cellIdx[owner], start, tr.Ns)
				}
			} else {
				val, found, err = c.cls[owner].Get(ctx, key)
				if owner != c.opt.Local {
					outcome = OutcomeForward
				}
			}
			if err == nil {
				c.t.router.NoteSuccess(owner)
				c.finish(sc, total, trace.KindGet, c.cls[owner].Transport(), uint32(attempt+1), outcome, nil)
				return val, found, nil
			}
			lastErr = err
		}
		c.noteFailed(owner)
	}
	return nil, false, lastErr
}

// followerGet serves a remotely-owned key through the local follower
// cache: fresh entries answer locally; stale entries revalidate by
// version against the owner; misses fetch (with version) from the owner
// and populate the cache. When total is non-nil the legs' spans fold
// into it: local-cell spans first, then — if the entry was stale or
// missing — the owner cell's revalidation legs, bracketed by
// follower-revalidate / tier-forward annotations.
func (c *Client) followerGet(ctx context.Context, owner string, key []byte, total *fabric.OpTrace) ([]byte, bool, Outcome, error) {
	fk := followerKey(key)
	var raw []byte
	var found bool
	var err error
	if total != nil {
		var tr fabric.OpTrace
		raw, found, tr, err = c.local.GetTraced(ctx, fk)
		total.Sequence(tr)
	} else {
		raw, found, err = c.local.Get(ctx, fk)
	}
	if err == nil && found {
		if ver, stamp, payload, ok := decodeFollower(raw); ok {
			if age := c.now() - stamp; age <= c.opt.StaleBoundNs {
				c.m.FollowerHits.Add(1)
				if total != nil {
					total.Annotate(trace.SpanFollowerHit, uint32(age/1000), total.Ns, 0)
				}
				return payload, true, OutcomeFollowerHit, nil
			}
			// Stale: ask the owner for the current version (the probe
			// also carries the value, so a changed key refreshes in one
			// round trip).
			var oval []byte
			var over truetime.Version
			var ofound bool
			var oerr error
			if total != nil {
				start := total.Ns
				var otr fabric.OpTrace
				oval, over, ofound, otr, oerr = c.cls[owner].GetVersionedTraced(ctx, key)
				total.Sequence(otr)
				arg := uint32(0) // confirmed
				switch {
				case oerr == nil && !ofound:
					arg = 2 // erased at the owner
				case oerr == nil && over != ver:
					arg = 1 // refreshed with a newer value
				}
				total.Annotate(trace.SpanFollowerReval, arg, start, otr.Ns)
			} else {
				oval, over, ofound, oerr = c.cls[owner].GetVersioned(ctx, key)
			}
			if oerr != nil {
				return nil, false, OutcomeRevalidateMiss, oerr
			}
			if !ofound {
				_ = c.local.Erase(ctx, fk)
				return nil, false, OutcomeRevalidateMiss, nil
			}
			if over == ver {
				c.m.FollowerRevalids.Add(1)
				c.storeFollower(ctx, key, payload, ver)
				return payload, true, OutcomeFollowerHit, nil
			}
			c.m.FollowerRefreshes.Add(1)
			c.storeFollower(ctx, key, oval, over)
			return oval, true, OutcomeRevalidateMiss, nil
		}
	}
	c.m.FollowerMisses.Add(1)
	var val []byte
	var ver truetime.Version
	if total != nil {
		start := total.Ns
		var otr fabric.OpTrace
		val, ver, found, otr, err = c.cls[owner].GetVersionedTraced(ctx, key)
		total.Sequence(otr)
		total.Annotate(trace.SpanTierForward, c.cellIdx[owner], start, otr.Ns)
	} else {
		val, ver, found, err = c.cls[owner].GetVersioned(ctx, key)
	}
	if err != nil {
		return nil, false, OutcomeRevalidateMiss, err
	}
	if found {
		c.storeFollower(ctx, key, val, ver)
	}
	return val, found, OutcomeRevalidateMiss, nil
}

// Set stores key=value on the owning cell.
func (c *Client) Set(ctx context.Context, key, value []byte) error {
	_, err := c.SetVersioned(ctx, key, value)
	return err
}

// SetVersioned stores key=value on the owning cell and returns the
// owner-assigned version. The ack means the owning cell (under the ring
// in effect at ack time) holds the write.
func (c *Client) SetVersioned(ctx context.Context, key, value []byte) (truetime.Version, error) {
	c.m.Ops.Add(1)
	h := c.t.opt.Hash(key)
	sc, ctx, total := c.traceOp(ctx, trace.KindSet)
	var lastErr error = ErrNoCells
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		owner, err := c.routeTraced(h, total, attempt)
		if err != nil {
			return truetime.Version{}, err
		}
		var ver truetime.Version
		outcome := c.mutationLeg(total, owner, func() (fabric.OpTrace, error) {
			var tr fabric.OpTrace
			if total != nil {
				ver, tr, err = c.cls[owner].SetVersionedTraced(ctx, key, value)
			} else {
				ver, err = c.cls[owner].SetVersioned(ctx, key, value)
			}
			return tr, err
		})
		if err == nil {
			c.t.router.NoteSuccess(owner)
			if c.opt.FollowerReads && owner != c.opt.Local {
				c.storeFollower(ctx, key, value, ver)
			}
			c.finish(sc, total, trace.KindSet, trace.TransportRPC, uint32(attempt+1), outcome, nil)
			return ver, nil
		}
		lastErr = err
		c.noteFailed(owner)
	}
	return truetime.Version{}, lastErr
}

// mutationLeg runs one owner-cell mutation attempt, sequencing its spans
// into total and bracketing remote legs with a tier-forward annotation.
// It returns the outcome class for the attempt.
func (c *Client) mutationLeg(total *fabric.OpTrace, owner string, run func() (fabric.OpTrace, error)) Outcome {
	outcome := OutcomeOwnerDirect
	if owner != c.opt.Local {
		outcome = OutcomeForward
	}
	if total == nil {
		_, _ = run()
		return outcome
	}
	start := total.Ns
	tr, _ := run()
	total.Sequence(tr)
	if outcome == OutcomeForward {
		total.Annotate(trace.SpanTierForward, c.cellIdx[owner], start, tr.Ns)
	}
	return outcome
}

// Erase removes key from its owning cell (and the local follower cache).
func (c *Client) Erase(ctx context.Context, key []byte) error {
	c.m.Ops.Add(1)
	h := c.t.opt.Hash(key)
	sc, ctx, total := c.traceOp(ctx, trace.KindErase)
	var lastErr error = ErrNoCells
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		owner, err := c.routeTraced(h, total, attempt)
		if err != nil {
			return err
		}
		outcome := c.mutationLeg(total, owner, func() (fabric.OpTrace, error) {
			var tr fabric.OpTrace
			if total != nil {
				tr, err = c.cls[owner].EraseTraced(ctx, key)
			} else {
				err = c.cls[owner].Erase(ctx, key)
			}
			return tr, err
		})
		if err == nil {
			c.t.router.NoteSuccess(owner)
			if c.opt.FollowerReads && owner != c.opt.Local {
				_ = c.local.Erase(ctx, followerKey(key))
			}
			c.finish(sc, total, trace.KindErase, trace.TransportRPC, uint32(attempt+1), outcome, nil)
			return nil
		}
		lastErr = err
		c.noteFailed(owner)
	}
	return lastErr
}

// Cas compare-and-swaps on the owning cell. The follower cache entry is
// dropped (not updated) on success: Cas does not return the new version,
// so the next follower read revalidates.
func (c *Client) Cas(ctx context.Context, key, value []byte, expected truetime.Version) (bool, error) {
	c.m.Ops.Add(1)
	h := c.t.opt.Hash(key)
	sc, ctx, total := c.traceOp(ctx, trace.KindCas)
	var lastErr error = ErrNoCells
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		owner, err := c.routeTraced(h, total, attempt)
		if err != nil {
			return false, err
		}
		var applied bool
		outcome := c.mutationLeg(total, owner, func() (fabric.OpTrace, error) {
			var tr fabric.OpTrace
			if total != nil {
				applied, tr, err = c.cls[owner].CasTraced(ctx, key, value, expected)
			} else {
				applied, err = c.cls[owner].Cas(ctx, key, value, expected)
			}
			return tr, err
		})
		if err == nil {
			c.t.router.NoteSuccess(owner)
			if applied && c.opt.FollowerReads && owner != c.opt.Local {
				_ = c.local.Erase(ctx, followerKey(key))
			}
			c.finish(sc, total, trace.KindCas, trace.TransportRPC, uint32(attempt+1), outcome, nil)
			return applied, nil
		}
		lastErr = err
		c.noteFailed(owner)
	}
	return false, lastErr
}

// CellClient exposes the underlying per-cell client (tooling, tests).
func (c *Client) CellClient(name string) *client.Client { return c.cls[name] }

func followerKey(key []byte) []byte {
	fk := make([]byte, len(followerPrefix)+len(key))
	copy(fk, followerPrefix)
	copy(fk[len(followerPrefix):], key)
	return fk
}

// storeFollower writes the wrapped entry into the local cell; failures
// are ignored (the follower cache is best-effort).
func (c *Client) storeFollower(ctx context.Context, key, payload []byte, ver truetime.Version) {
	_ = c.local.Set(ctx, followerKey(key), encodeFollower(ver, c.now(), payload))
}

// Follower entries are framed [Micros][ClientID][Seq][stampNs][payload],
// all little-endian u64: the owner's version for revalidation plus the
// local-clock freshness stamp.
func encodeFollower(ver truetime.Version, stamp uint64, payload []byte) []byte {
	b := make([]byte, 32+len(payload))
	binary.LittleEndian.PutUint64(b[0:], uint64(ver.Micros))
	binary.LittleEndian.PutUint64(b[8:], ver.ClientID)
	binary.LittleEndian.PutUint64(b[16:], ver.Seq)
	binary.LittleEndian.PutUint64(b[24:], stamp)
	copy(b[32:], payload)
	return b
}

func decodeFollower(b []byte) (ver truetime.Version, stamp uint64, payload []byte, ok bool) {
	if len(b) < 32 {
		return truetime.Version{}, 0, nil, false
	}
	ver.Micros = int64(binary.LittleEndian.Uint64(b[0:]))
	ver.ClientID = binary.LittleEndian.Uint64(b[8:])
	ver.Seq = binary.LittleEndian.Uint64(b[16:])
	stamp = binary.LittleEndian.Uint64(b[24:])
	return ver, stamp, b[32:], true
}

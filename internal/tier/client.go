package tier

import (
	"context"
	"encoding/binary"
	"errors"
	"sync/atomic"

	"cliquemap/internal/core/client"
	"cliquemap/internal/hashring"
	"cliquemap/internal/truetime"
)

// ErrNoCells means the router has no routable cell (everything dead or
// zero-weight).
var ErrNoCells = errors.New("tier: no routable cells")

// followerPrefix reserves the local-cell namespace holding follower-read
// cache entries (wrapped with version + freshness stamp), keeping them
// disjoint from authoritative entries the cell owns outright.
const followerPrefix = "\x00tier/"

// ClientOptions configures a tier client.
type ClientOptions struct {
	// Local names the cell this client is co-located with — the follower
	// cache for keys owned elsewhere. "" means the tier's first cell.
	Local string

	// FollowerReads serves GETs for remotely-owned keys from the local
	// cell when a cached copy is younger than StaleBound; older copies
	// are revalidated against the owner by version (TAO-style leader/
	// follower, bounded staleness instead of invalidation fan-out).
	FollowerReads bool

	// StaleBoundNs is the follower-cache freshness bound on the LOCAL
	// cell's virtual clock; 0 means 50ms.
	StaleBoundNs uint64

	// Retries is the tier-level re-route budget per op, on top of each
	// per-cell client's own retry loop. 0 means FailThreshold+1, enough
	// for one client to push a dying cell over the dead threshold and
	// still land its op on the new owner.
	Retries int

	// PerCell templates the per-cell client options (strategy, R,
	// observer, ...). ID/HostID are assigned per cell as usual.
	PerCell client.Options
}

// Metrics counts tier-client outcomes. Read with ClientMetrics.
type Metrics struct {
	Ops               atomic.Uint64 // tier-level ops attempted
	Reroutes          atomic.Uint64 // retries after a failed cell op
	DeadFailovers     atomic.Uint64 // retries that followed a cell-death rebuild
	FollowerHits      atomic.Uint64 // served fresh from the local follower cache
	FollowerRevalids  atomic.Uint64 // stale entry confirmed current by owner version
	FollowerRefreshes atomic.Uint64 // stale entry replaced by a newer owner value
	FollowerMisses    atomic.Uint64 // no usable local entry; fetched from owner
}

// Client routes ops across a tier's cells: GETs and mutations go to the
// key's owning cell, mutations ack only after the owner does, and a
// failed cell is reported to the router and retried against the next
// owner — that retry-after-reroute is what keeps acked writes readable
// through a cell death.
type Client struct {
	t     *Tier
	opt   ClientOptions
	cls   map[string]*client.Client
	local *client.Client
	now   func() uint64 // local cell's virtual clock
	m     Metrics
}

// NewClient builds a tier client with one per-cell client each.
func (t *Tier) NewClient(opt ClientOptions) (*Client, error) {
	if opt.Local == "" {
		opt.Local = t.order[0]
	}
	if t.cells[opt.Local] == nil {
		return nil, errors.New("tier: unknown local cell " + opt.Local)
	}
	if opt.StaleBoundNs == 0 {
		opt.StaleBoundNs = 50e6
	}
	if opt.Retries <= 0 {
		opt.Retries = t.opt.FailThreshold + 1
	}
	c := &Client{t: t, opt: opt, cls: make(map[string]*client.Client, len(t.order))}
	for _, n := range t.order {
		c.cls[n] = t.cells[n].NewClient(opt.PerCell)
	}
	c.local = c.cls[opt.Local]
	c.now = t.cells[opt.Local].Fabric.NowNs
	return c, nil
}

// Metrics returns the client's outcome counters.
func (c *Client) Metrics() *Metrics { return &c.m }

// route resolves key's owning cell, or ErrNoCells.
func (c *Client) route(h hashring.KeyHash) (string, error) {
	n, ok := c.t.router.Route(h)
	if !ok {
		return "", ErrNoCells
	}
	return n, nil
}

// noteFailed reports a failed op on owner and counts the retry flavor.
func (c *Client) noteFailed(owner string) {
	if c.t.router.NoteFailure(owner) {
		c.m.DeadFailovers.Add(1)
	}
	c.m.Reroutes.Add(1)
}

// Get looks up key on its owning cell; with FollowerReads, remotely-
// owned keys are served from the local cell inside the staleness bound.
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	c.m.Ops.Add(1)
	h := c.t.opt.Hash(key)
	var lastErr error = ErrNoCells
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		owner, err := c.route(h)
		if err != nil {
			return nil, false, err
		}
		if c.opt.FollowerReads && owner != c.opt.Local {
			val, found, err := c.followerGet(ctx, owner, key)
			if err == nil {
				c.t.router.NoteSuccess(owner)
				return val, found, nil
			}
			lastErr = err
		} else {
			val, found, err := c.cls[owner].Get(ctx, key)
			if err == nil {
				c.t.router.NoteSuccess(owner)
				return val, found, nil
			}
			lastErr = err
		}
		c.noteFailed(owner)
	}
	return nil, false, lastErr
}

// followerGet serves a remotely-owned key through the local follower
// cache: fresh entries answer locally; stale entries revalidate by
// version against the owner; misses fetch (with version) from the owner
// and populate the cache.
func (c *Client) followerGet(ctx context.Context, owner string, key []byte) ([]byte, bool, error) {
	fk := followerKey(key)
	if raw, found, err := c.local.Get(ctx, fk); err == nil && found {
		if ver, stamp, payload, ok := decodeFollower(raw); ok {
			if age := c.now() - stamp; age <= c.opt.StaleBoundNs {
				c.m.FollowerHits.Add(1)
				return payload, true, nil
			}
			// Stale: ask the owner for the current version (the probe
			// also carries the value, so a changed key refreshes in one
			// round trip).
			oval, over, ofound, oerr := c.cls[owner].GetVersioned(ctx, key)
			if oerr != nil {
				return nil, false, oerr
			}
			if !ofound {
				_ = c.local.Erase(ctx, fk)
				return nil, false, nil
			}
			if over == ver {
				c.m.FollowerRevalids.Add(1)
				c.storeFollower(ctx, key, payload, ver)
				return payload, true, nil
			}
			c.m.FollowerRefreshes.Add(1)
			c.storeFollower(ctx, key, oval, over)
			return oval, true, nil
		}
	}
	c.m.FollowerMisses.Add(1)
	val, ver, found, err := c.cls[owner].GetVersioned(ctx, key)
	if err != nil {
		return nil, false, err
	}
	if found {
		c.storeFollower(ctx, key, val, ver)
	}
	return val, found, nil
}

// Set stores key=value on the owning cell.
func (c *Client) Set(ctx context.Context, key, value []byte) error {
	_, err := c.SetVersioned(ctx, key, value)
	return err
}

// SetVersioned stores key=value on the owning cell and returns the
// owner-assigned version. The ack means the owning cell (under the ring
// in effect at ack time) holds the write.
func (c *Client) SetVersioned(ctx context.Context, key, value []byte) (truetime.Version, error) {
	c.m.Ops.Add(1)
	h := c.t.opt.Hash(key)
	var lastErr error = ErrNoCells
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		owner, err := c.route(h)
		if err != nil {
			return truetime.Version{}, err
		}
		ver, err := c.cls[owner].SetVersioned(ctx, key, value)
		if err == nil {
			c.t.router.NoteSuccess(owner)
			if c.opt.FollowerReads && owner != c.opt.Local {
				c.storeFollower(ctx, key, value, ver)
			}
			return ver, nil
		}
		lastErr = err
		c.noteFailed(owner)
	}
	return truetime.Version{}, lastErr
}

// Erase removes key from its owning cell (and the local follower cache).
func (c *Client) Erase(ctx context.Context, key []byte) error {
	c.m.Ops.Add(1)
	h := c.t.opt.Hash(key)
	var lastErr error = ErrNoCells
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		owner, err := c.route(h)
		if err != nil {
			return err
		}
		if err := c.cls[owner].Erase(ctx, key); err == nil {
			c.t.router.NoteSuccess(owner)
			if c.opt.FollowerReads && owner != c.opt.Local {
				_ = c.local.Erase(ctx, followerKey(key))
			}
			return nil
		} else {
			lastErr = err
		}
		c.noteFailed(owner)
	}
	return lastErr
}

// Cas compare-and-swaps on the owning cell. The follower cache entry is
// dropped (not updated) on success: Cas does not return the new version,
// so the next follower read revalidates.
func (c *Client) Cas(ctx context.Context, key, value []byte, expected truetime.Version) (bool, error) {
	c.m.Ops.Add(1)
	h := c.t.opt.Hash(key)
	var lastErr error = ErrNoCells
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		owner, err := c.route(h)
		if err != nil {
			return false, err
		}
		applied, err := c.cls[owner].Cas(ctx, key, value, expected)
		if err == nil {
			c.t.router.NoteSuccess(owner)
			if applied && c.opt.FollowerReads && owner != c.opt.Local {
				_ = c.local.Erase(ctx, followerKey(key))
			}
			return applied, nil
		}
		lastErr = err
		c.noteFailed(owner)
	}
	return false, lastErr
}

// CellClient exposes the underlying per-cell client (tooling, tests).
func (c *Client) CellClient(name string) *client.Client { return c.cls[name] }

func followerKey(key []byte) []byte {
	fk := make([]byte, len(followerPrefix)+len(key))
	copy(fk, followerPrefix)
	copy(fk[len(followerPrefix):], key)
	return fk
}

// storeFollower writes the wrapped entry into the local cell; failures
// are ignored (the follower cache is best-effort).
func (c *Client) storeFollower(ctx context.Context, key, payload []byte, ver truetime.Version) {
	_ = c.local.Set(ctx, followerKey(key), encodeFollower(ver, c.now(), payload))
}

// Follower entries are framed [Micros][ClientID][Seq][stampNs][payload],
// all little-endian u64: the owner's version for revalidation plus the
// local-clock freshness stamp.
func encodeFollower(ver truetime.Version, stamp uint64, payload []byte) []byte {
	b := make([]byte, 32+len(payload))
	binary.LittleEndian.PutUint64(b[0:], uint64(ver.Micros))
	binary.LittleEndian.PutUint64(b[8:], ver.ClientID)
	binary.LittleEndian.PutUint64(b[16:], ver.Seq)
	binary.LittleEndian.PutUint64(b[24:], stamp)
	copy(b[32:], payload)
	return b
}

func decodeFollower(b []byte) (ver truetime.Version, stamp uint64, payload []byte, ok bool) {
	if len(b) < 32 {
		return truetime.Version{}, 0, nil, false
	}
	ver.Micros = int64(binary.LittleEndian.Uint64(b[0:]))
	ver.ClientID = binary.LittleEndian.Uint64(b[8:])
	ver.Seq = binary.LittleEndian.Uint64(b[16:])
	stamp = binary.LittleEndian.Uint64(b[24:])
	return ver, stamp, b[32:], true
}

// Package onerma models 1RMA (SIGCOMM 2020), the all-hardware RMA NIC
// CliqueMap also runs over (§7.2.4).
//
// The tradeoffs against Pony Express, per the paper:
//
//   - No SCAR: the serving path is fixed-function hardware, so every GET
//     is a 2×R — two fabric round trips.
//   - No software bottleneck on the serving side: the NIC serves reads at
//     line rate regardless of host CPU load, and the NIC↔memory PCIe
//     interaction is heavily optimized, so the application-visible RTT is
//     *lower* than a packet-oriented software path.
//   - The NIC emits hardware timestamps for the combined fabric + remote
//     PCIe latency of each command (Figure 16's "command executor
//     timestamps"), separate from end-to-end GET latency (Figure 17).
//
// One testbed artifact is also modelled because the paper calls it out:
// at very low load, power-saving C-state transitions make latency
// *highest* at the *lowest* op rates; by ~250K GET/s/client the effect
// disappears (§7.2.4).
package onerma

import (
	"sync"
	"time"

	"cliquemap/internal/fabric"
	"cliquemap/internal/hashring"
	"cliquemap/internal/nic"
	"cliquemap/internal/rmem"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
)

// CostModel calibrates the hardware path.
type CostModel struct {
	// HWServiceNs is the NIC's fixed per-command service time.
	HWServiceNs uint64
	// PCIePerKBNs is the remote PCIe transfer cost per KB.
	PCIePerKBNs uint64
	// RTTScale shrinks the fabric base RTT: 1RMA's PCIe-optimized path
	// sees a lower application-visible RTT than packet systems.
	RTTScale float64
	// ClientCPUNs is the client-side CPU per op (the CliqueMap client
	// dominates 1RMA end-to-end latency in Figure 17).
	ClientCPUNs uint64
	// CStateWakeNs is the worst-case wake penalty after an idle gap.
	CStateWakeNs uint64
	// CStateIdleGap is the idle duration that lets the host drop into a
	// deep C-state.
	CStateIdleGap time.Duration
}

// DefaultCostModel returns the §7.2.4 calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		HWServiceNs:   250,
		PCIePerKBNs:   35,
		RTTScale:      0.8,
		ClientCPUNs:   2200,
		CStateWakeNs:  25000,
		CStateIdleGap: 150 * time.Microsecond,
	}
}

// NIC is one host's 1RMA device.
type NIC struct {
	host *fabric.Host
	reg  *rmem.Registry
	cost CostModel
	acct *stats.CPUAccount
	// hwHist, when set, records per-command fabric+PCIe latencies — the
	// Figure 16 measurement.
	hwHist *stats.Histogram

	mu      sync.Mutex
	lastOp  time.Time
	down    bool
	extraNs uint64 // injected per-command service delay (chaos brownout)
}

// New builds a 1RMA NIC. reg may be nil for client-only hosts. hwHist may
// be nil to skip hardware timestamp collection.
func New(host *fabric.Host, reg *rmem.Registry, cost CostModel, acct *stats.CPUAccount, hwHist *stats.Histogram) *NIC {
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	return &NIC{host: host, reg: reg, cost: cost, acct: acct, hwHist: hwHist, lastOp: time.Now().Add(-time.Second)}
}

// Host returns the attached fabric host.
func (n *NIC) Host() *fabric.Host { return n.host }

// Registry returns the window registry (nil for client-only hosts).
func (n *NIC) Registry() *rmem.Registry { return n.reg }

// SetDown simulates NIC/host failure.
func (n *NIC) SetDown(down bool) {
	n.mu.Lock()
	n.down = down
	n.mu.Unlock()
}

// SetServiceDelay injects ns of extra per-command service latency — a
// degraded device (thermal throttling, a misbehaving PCIe link) — giving
// 1RMA the same brownout actuator the internal/chaos plane drives on
// Pony Express. 0 restores normal service.
func (n *NIC) SetServiceDelay(ns uint64) {
	n.mu.Lock()
	n.extraNs = ns
	n.mu.Unlock()
}

func (n *NIC) serviceDelay() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.extraNs
}

// cstatePenalty returns the wake cost if the host has been idle long
// enough to enter a deep C-state, and stamps the op time.
func (n *NIC) cstatePenalty() (uint64, bool) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, false
	}
	idle := now.Sub(n.lastOp)
	n.lastOp = now
	if idle >= n.cost.CStateIdleGap {
		return n.cost.CStateWakeNs, true
	}
	return 0, true
}

// Conn is the per-target handle implementing nic.RMA.
type Conn struct {
	from *NIC
	to   *NIC
	f    *fabric.Fabric
}

// Dial connects an initiator to a target over fabric f.
func Dial(f *fabric.Fabric, from, to *NIC) *Conn {
	return &Conn{from: from, to: to, f: f}
}

// Target returns the serving-side NIC.
func (c *Conn) Target() *NIC { return c.to }

// SupportsScar reports false: 1RMA is fixed-function hardware.
func (c *Conn) SupportsScar() bool { return false }

// ScanAndRead is unsupported on 1RMA.
func (c *Conn) ScanAndRead(uint64, rmem.WindowID, int, int, hashring.KeyHash, int) (nic.ScarResult, fabric.OpTrace, error) {
	return nic.ScarResult{}, fabric.OpTrace{}, nic.ErrNotSupported
}

// Read performs a one-sided hardware read. The hardware component
// (fabric + remote PCIe) is recorded to the NIC's hardware-timestamp
// histogram; client CPU is added on top for the end-to-end trace.
func (c *Conn) Read(at uint64, win rmem.WindowID, off, length int) ([]byte, fabric.OpTrace, error) {
	var tr fabric.OpTrace
	tr.Spans = make([]fabric.Span, 0, 4)

	wake, up := c.from.cstatePenalty()
	if !up {
		return nil, tr, nic.ErrUnreachable
	}
	if wake > 0 {
		tr.AddSpan(trace.SpanCStateWake, 0, wake)
	}

	// Client CPU: issuing through the 1RMA command queue.
	tr.AddSpan(trace.SpanEngineIssue, 0, c.from.cost.ClientCPUNs)
	if c.from.acct != nil {
		c.from.acct.Charge("client-1rma", c.from.cost.ClientCPUNs)
	}

	if c.to.reg == nil {
		return nil, tr, nic.ErrUnreachable
	}
	c.to.mu.Lock()
	down := c.to.down
	c.to.mu.Unlock()
	if down || !c.f.Linked(c.from.host.ID(), c.to.host.ID()) {
		return nil, tr, nic.ErrUnreachable
	}

	// Hardware portion: scaled fabric RTT + fixed HW service + PCIe
	// transfer. No utilization-dependent software queueing on the server.
	const reqBytes = 64
	reqAt := uint64(0)
	if at != 0 {
		reqAt = at + tr.Ns
	}
	hw := uint64(float64(c.to.host.DeliverAt(reqAt, reqBytes))*c.to.cost.RTTScale) +
		c.to.cost.HWServiceNs + c.to.serviceDelay() +
		uint64(length)*c.to.cost.PCIePerKBNs/1024

	respAt := uint64(0)
	if at != 0 {
		respAt = at + tr.Ns + hw
	}
	data, rerr := c.to.reg.Read(win, off, length)
	if rerr != nil {
		hw += uint64(float64(c.from.host.DeliverAt(respAt, 64)) * c.from.cost.RTTScale)
		if c.from.hwHist != nil {
			c.from.hwHist.Record(hw)
		}
		tr.AddSpan(trace.SpanHWService, uint32(length), hw)
		return nil, tr, rerr
	}

	if !c.f.Linked(c.to.host.ID(), c.from.host.ID()) {
		return nil, tr, nic.ErrUnreachable
	}
	hw += uint64(float64(c.from.host.DeliverAt(respAt, length)) * c.from.cost.RTTScale)
	if c.from.hwHist != nil {
		c.from.hwHist.Record(hw)
	}
	tr.AddSpan(trace.SpanHWService, uint32(length), hw)
	tr.AddBytes(reqBytes + length)
	return data, tr, nil
}

package onerma

import (
	"testing"
	"time"

	"cliquemap/internal/fabric"
	"cliquemap/internal/hashring"
	"cliquemap/internal/nic"
	"cliquemap/internal/rmem"
	"cliquemap/internal/stats"
)

func newPair(hw *stats.Histogram) (*Conn, *rmem.Window) {
	f := fabric.New(2, fabric.Params{})
	reg := rmem.NewRegistry()
	region := rmem.NewRegion(1<<16, 1<<16)
	for i := 0; i < 1<<16; i += 4096 {
		region.Write(i, []byte{byte(i)})
	}
	w := reg.Register(region, 1)
	server := New(f.Host(1), reg, CostModel{}, nil, nil)
	client := New(f.Host(0), nil, CostModel{}, stats.NewCPUAccount(), hw)
	return Dial(f, client, server), w
}

func TestReadBasic(t *testing.T) {
	conn, w := newPair(nil)
	data, tr, err := conn.Read(0, w.ID, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1024 {
		t.Fatalf("read %d bytes", len(data))
	}
	if tr.Ns == 0 {
		t.Error("no latency traced")
	}
}

func TestNoScar(t *testing.T) {
	conn, _ := newPair(nil)
	if conn.SupportsScar() {
		t.Error("1RMA must not support SCAR")
	}
	if _, _, err := conn.ScanAndRead(0, 1, 0, 64, hashring.KeyHash{Hi: 1}, 4); err != nic.ErrNotSupported {
		t.Errorf("SCAR on 1RMA: got %v", err)
	}
}

func TestHWTimestampsRecorded(t *testing.T) {
	var hw stats.Histogram
	conn, w := newPair(&hw)
	for i := 0; i < 10; i++ {
		conn.Read(0, w.ID, 0, 4096)
	}
	if hw.Count() != 10 {
		t.Errorf("hw timestamps = %d, want 10", hw.Count())
	}
	// HW component must exclude client CPU: it should be below the total.
	_, tr, _ := conn.Read(0, w.ID, 0, 4096)
	if hw.Max() >= tr.Ns+hw.Max() {
		t.Error("sanity") // structural check only
	}
	if hw.Percentile(50) == 0 {
		t.Error("hw latency zero")
	}
}

// TestCStatePenaltyAtIdle reproduces the §7.2.4 observation: the first op
// after an idle gap pays a wake penalty, so latency is highest at lowest
// load.
func TestCStatePenaltyAtIdle(t *testing.T) {
	conn, w := newPair(nil)
	cm := DefaultCostModel()

	// Warm: back-to-back ops avoid the penalty.
	conn.Read(0, w.ID, 0, 64)
	_, warm, err := conn.Read(0, w.ID, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(cm.CStateIdleGap + time.Millisecond)
	_, cold, err := conn.Read(0, w.ID, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Ns < warm.Ns+cm.CStateWakeNs/2 {
		t.Errorf("idle op %dns vs warm %dns: C-state penalty missing", cold.Ns, warm.Ns)
	}
}

// TestServerLoadInsensitive is 1RMA's differentiator: the serving path is
// hardware, so hammering the server does not inflate 1RMA service the way
// a software engine would queue. (Only fabric terms grow with bytes.)
func TestServerLoadInsensitive(t *testing.T) {
	var hw stats.Histogram
	conn, w := newPair(&hw)
	for i := 0; i < 200; i++ {
		conn.Read(0, w.ID, 0, 64)
	}
	early := hw.Snapshot().Percentile(50)
	for i := 0; i < 5000; i++ {
		conn.Read(0, w.ID, 0, 64)
	}
	late := hw.Percentile(99)
	// p99 after heavy load should stay within a small multiple of the
	// early median — no software queue blow-up (fabric jitter remains).
	if late > early*4 {
		t.Errorf("hw p99 %d vs early p50 %d: unexpected software-like queueing", late, early)
	}
}

func TestDownAndClientOnly(t *testing.T) {
	conn, w := newPair(nil)
	conn.Target().SetDown(true)
	if _, _, err := conn.Read(0, w.ID, 0, 64); err != nic.ErrUnreachable {
		t.Errorf("down target: %v", err)
	}
	conn.Target().SetDown(false)
	if _, _, err := conn.Read(0, w.ID, 0, 64); err != nil {
		t.Errorf("after recovery: %v", err)
	}

	f := fabric.New(2, fabric.Params{})
	clientOnly := Dial(f, New(f.Host(0), nil, CostModel{}, nil, nil), New(f.Host(1), nil, CostModel{}, nil, nil))
	if _, _, err := clientOnly.Read(0, 1, 0, 64); err != nic.ErrUnreachable {
		t.Errorf("client-only target: %v", err)
	}
}

func TestRevokedWindowError(t *testing.T) {
	conn, w := newPair(nil)
	conn.Target().Registry().Revoke(w.ID)
	if _, _, err := conn.Read(0, w.ID, 0, 64); err == nil {
		t.Error("revoked window read succeeded")
	}
}

func BenchmarkOneRMARead(b *testing.B) {
	conn, w := newPair(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := conn.Read(0, w.ID, 0, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

package hashring

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultHashDeterministic(t *testing.T) {
	a := DefaultHash([]byte("hello"))
	b := DefaultHash([]byte("hello"))
	if a != b {
		t.Error("hash not deterministic")
	}
}

func TestDefaultHashNeverZero(t *testing.T) {
	f := func(key []byte) bool { return !DefaultHash(key).Zero() }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	if DefaultHash(nil).Zero() || DefaultHash([]byte{}).Zero() {
		t.Error("empty key hashed to zero")
	}
}

func TestDefaultHashNoShortCollisions(t *testing.T) {
	seen := map[KeyHash]string{}
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%d", i)
		h := DefaultHash([]byte(k))
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: %q and %q", prev, k)
		}
		seen[h] = k
	}
}

func TestPrimaryUniform(t *testing.T) {
	const n, keys = 50, 200000
	r := New(n, nil)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Primary(r.Hash([]byte(fmt.Sprintf("k%d", i))))]++
	}
	want := float64(keys) / n
	for b, c := range counts {
		if dev := math.Abs(float64(c)-want) / want; dev > 0.10 {
			t.Errorf("backend %d load %d deviates %.1f%% from uniform", b, c, dev*100)
		}
	}
}

func TestBucketUniform(t *testing.T) {
	const buckets, keys = 128, 100000
	r := New(3, nil)
	counts := make([]int, buckets)
	for i := 0; i < keys; i++ {
		counts[r.Bucket(r.Hash([]byte(fmt.Sprintf("k%d", i))), buckets)]++
	}
	want := float64(keys) / buckets
	for b, c := range counts {
		if dev := math.Abs(float64(c)-want) / want; dev > 0.25 {
			t.Errorf("bucket %d load %d deviates %.1f%%", b, c, dev*100)
		}
	}
}

func TestCohortAdjacency(t *testing.T) {
	r := New(10, nil)
	h := r.Hash([]byte("some-key"))
	c := r.Cohort(h, 3)
	if len(c) != 3 {
		t.Fatalf("cohort size %d", len(c))
	}
	p := r.Primary(h)
	for i, b := range c {
		if want := (p + i) % 10; b != want {
			t.Errorf("cohort[%d] = %d, want %d", i, b, want)
		}
	}
}

func TestCohortWrapsModN(t *testing.T) {
	r := New(3, func(key []byte) KeyHash {
		return KeyHash{Hi: 2, Lo: 1} // primary = 2
	})
	c := r.Cohort(r.Hash([]byte("x")), 3)
	want := []int{2, 0, 1}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("cohort = %v, want %v", c, want)
		}
	}
}

func TestCohortClamped(t *testing.T) {
	r := New(2, nil)
	if got := len(r.Cohort(r.Hash([]byte("x")), 3)); got != 2 {
		t.Errorf("cohort of 3 replicas on 2 backends has size %d", got)
	}
	if got := len(r.Cohort(r.Hash([]byte("x")), 0)); got != 1 {
		t.Errorf("cohort of 0 replicas has size %d", got)
	}
}

func TestCohortOf(t *testing.T) {
	r := New(5, nil)
	h := r.Hash([]byte("k"))
	members := map[int]bool{}
	for _, b := range r.Cohort(h, 3) {
		members[b] = true
	}
	for b := 0; b < 5; b++ {
		if got := r.CohortOf(h, 3, b); got != members[b] {
			t.Errorf("CohortOf(%d) = %v, want %v", b, got, members[b])
		}
	}
}

func TestCohortDistinctMembers(t *testing.T) {
	f := func(raw uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 3
		r := New(n, nil)
		h := KeyHash{Hi: raw, Lo: raw ^ 0xabcd}
		c := r.Cohort(h, 3)
		return c[0] != c[1] && c[1] != c[2] && c[0] != c[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCustomHashFunc(t *testing.T) {
	calls := 0
	r := New(4, func(key []byte) KeyHash {
		calls++
		return KeyHash{Hi: uint64(len(key)), Lo: 1}
	})
	r.Hash([]byte("abc"))
	if calls != 1 {
		t.Error("custom hash not invoked")
	}
	if r.Primary(KeyHash{Hi: 7, Lo: 1}) != 3 {
		t.Error("primary should be Hi mod N")
	}
}

func TestNewPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0, nil)
}

func BenchmarkDefaultHash(b *testing.B) {
	key := []byte("a-representative-cache-key-of-32b")
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		DefaultHash(key)
	}
}

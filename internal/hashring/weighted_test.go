package hashring

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// sampleHashes returns a deterministic sampled keyspace: hashes of
// "key-0000..." through n, the same keys every run.
func sampleHashes(n int) []KeyHash {
	hs := make([]KeyHash, n)
	for i := range hs {
		hs[i] = DefaultHash([]byte(fmt.Sprintf("key-%08d", i)))
	}
	return hs
}

func equalMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{Name: fmt.Sprintf("cell-%d", i), Weight: 1}
	}
	return ms
}

func TestWeightedRingDeterministic(t *testing.T) {
	a := BuildWeighted(equalMembers(5), 0)
	b := BuildWeighted(equalMembers(5), 0)
	for _, h := range sampleHashes(5000) {
		if a.Owner(h) != b.Owner(h) {
			t.Fatal("two builds from equal inputs route differently")
		}
	}
}

func TestWeightedRingSharesTrackWeights(t *testing.T) {
	members := []Member{
		{Name: "us", Weight: 1},
		{Name: "eu", Weight: 2},
		{Name: "asia", Weight: 1},
	}
	r := BuildWeighted(members, 0)
	shares := r.Shares()
	total := 0.0
	for i, s := range shares {
		want := members[i].Weight / 4.0
		if math.Abs(s-want) > 0.08 {
			t.Errorf("%s share %.3f, want ~%.3f", members[i].Name, s, want)
		}
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", total)
	}

	// Sampled ownership must agree with the analytic arc shares.
	counts := make([]int, len(members))
	hs := sampleHashes(200000)
	for _, h := range hs {
		counts[r.Owner(h)]++
	}
	for i, c := range counts {
		got := float64(c) / float64(len(hs))
		if math.Abs(got-shares[i]) > 0.01 {
			t.Errorf("%s sampled share %.3f vs analytic %.3f", members[i].Name, got, shares[i])
		}
	}
}

// movement reports the fraction of hs whose owner name changed between
// rings, plus the set of members keys moved away from.
func movement(t *testing.T, a, b *WeightedRing, hs []KeyHash) (frac float64, movedFrom map[string]int) {
	t.Helper()
	moved := 0
	movedFrom = map[string]int{}
	for _, h := range hs {
		was, now := a.OwnerName(h), b.OwnerName(h)
		if was != now {
			moved++
			movedFrom[was]++
		}
	}
	return float64(moved) / float64(len(hs)), movedFrom
}

// slack on the 1/N movement bound: virtual-node placement has bounded
// variance (~1/sqrt(vnodes) relative), and the sampled keyspace adds a
// little more. 4 points of absolute slack covers both at 128 vnodes.
const movementSlack = 0.04

func TestWeightedRingRemoveMovesOnlyRemovedRange(t *testing.T) {
	const n = 5
	hs := sampleHashes(100000)
	before := BuildWeighted(equalMembers(n), 0)
	removed := equalMembers(n)
	removed[2].Weight = 0 // drop cell-2 without delisting it
	after := BuildWeighted(removed, 0)

	frac, movedFrom := movement(t, before, after, hs)
	if bound := 1.0/n + movementSlack; frac > bound {
		t.Errorf("removal moved %.3f of keyspace, bound %.3f", frac, bound)
	}
	// Strong consistent-hashing property: every moved key was owned by
	// the removed member; nobody else's keys shuffle.
	for from, c := range movedFrom {
		if from != "cell-2" {
			t.Errorf("%d keys moved away from untouched member %s", c, from)
		}
	}
	for _, h := range hs {
		if after.OwnerName(h) == "cell-2" {
			t.Fatal("zero-weight member still owns keys")
		}
	}
}

func TestWeightedRingAddMovesBoundedRange(t *testing.T) {
	const n = 5
	hs := sampleHashes(100000)
	before := BuildWeighted(equalMembers(n-1), 0)
	after := BuildWeighted(equalMembers(n), 0)

	frac, movedFrom := movement(t, before, after, hs)
	if bound := 1.0/n + movementSlack; frac > bound {
		t.Errorf("add moved %.3f of keyspace, bound %.3f", frac, bound)
	}
	// Adds pull keys in from every member, but each moved key must land
	// on the new member — no unrelated shuffling.
	_ = movedFrom
	for _, h := range hs {
		if before.OwnerName(h) != after.OwnerName(h) && after.OwnerName(h) != "cell-4" {
			t.Fatal("key moved between two pre-existing members on add")
		}
	}
}

func TestWeightedRingReweightMovesBoundedRange(t *testing.T) {
	const n = 4
	hs := sampleHashes(100000)
	before := BuildWeighted(equalMembers(n), 0)
	demoted := equalMembers(n)
	demoted[1].Weight = 0.25 // health demotion shape: 1 → 0.25
	after := BuildWeighted(demoted, 0)

	frac, movedFrom := movement(t, before, after, hs)
	if bound := 1.0/n + movementSlack; frac > bound {
		t.Errorf("re-weight moved %.3f of keyspace, bound %.3f", frac, bound)
	}
	for from, c := range movedFrom {
		if from != "cell-1" {
			t.Errorf("%d keys moved away from untouched member %s on demotion", c, from)
		}
	}
	// Demotion keeps a proportional slice: the surviving arcs are the
	// same virtual nodes, so the demoted member's share lands near its
	// weight fraction 0.25/3.25.
	shares := after.Shares()
	if want := 0.25 / 3.25; math.Abs(shares[1]-want) > movementSlack {
		t.Errorf("demoted member share %.3f, want ~%.3f", shares[1], want)
	}
}

func TestWeightedRingEmptyAndSingle(t *testing.T) {
	empty := BuildWeighted(nil, 0)
	if empty.Owner(DefaultHash([]byte("k"))) != -1 || empty.OwnerName(DefaultHash([]byte("k"))) != "" {
		t.Error("empty ring should own nothing")
	}
	dead := BuildWeighted([]Member{{Name: "x", Weight: 0}}, 0)
	if dead.Owner(DefaultHash([]byte("k"))) != -1 {
		t.Error("all-zero-weight ring should own nothing")
	}
	solo := BuildWeighted([]Member{{Name: "only", Weight: 1}}, 0)
	for _, h := range sampleHashes(100) {
		if solo.OwnerName(h) != "only" {
			t.Fatal("single-member ring must own everything")
		}
	}
}

func TestOrDefault(t *testing.T) {
	if OrDefault(nil)([]byte("k")) != DefaultHash([]byte("k")) {
		t.Error("OrDefault(nil) is not DefaultHash")
	}
	custom := func([]byte) KeyHash { return KeyHash{Hi: 7, Lo: 9} }
	if OrDefault(custom)([]byte("k")) != (KeyHash{Hi: 7, Lo: 9}) {
		t.Error("OrDefault dropped a non-nil hash")
	}
}

func TestFromPairGuardsZero(t *testing.T) {
	h := FromPair(func([]byte) (uint64, uint64) { return 0, 0 })
	if h([]byte("k")).Zero() {
		t.Error("FromPair let the reserved zero hash through")
	}
	h2 := FromPair(func(key []byte) (uint64, uint64) { return 3, 4 })
	if h2([]byte("k")) != (KeyHash{Hi: 3, Lo: 4}) {
		t.Error("FromPair altered a non-zero pair")
	}
}

// TestWeightedRingConcurrentRouteReweight is the -race hammer: readers
// route through an atomically swapped ring while a writer re-weights,
// mimicking the tier router's rebuild-and-swap discipline.
func TestWeightedRingConcurrentRouteReweight(t *testing.T) {
	var cur atomic.Pointer[WeightedRing]
	cur.Store(BuildWeighted(equalMembers(5), 0))
	hs := sampleHashes(2000)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				r := cur.Load()
				if o := r.Owner(hs[i%len(hs)]); o < -1 || o >= len(r.Members()) {
					t.Error("owner out of range")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		ms := equalMembers(5)
		ms[i%5].Weight = float64(i%4) * 0.25 // cycles 0, .25, .5, .75
		cur.Store(BuildWeighted(ms, 0))
	}
	stop.Store(true)
	wg.Wait()
}

package hashring

import (
	"fmt"
	"math/bits"
	"sort"
)

// This file grows hashring beyond the fixed-N intra-cell cohort math into
// a weighted consistent-hash ring for the federation tier (§2, §7 — a
// fleet of O(10²) independent cells). Each member owns a number of
// virtual nodes proportional to its weight; a key routes to the member
// owning the first virtual node at or after the key's ring position.
// Changing one member's weight only moves keys into or out of that
// member's arcs, so rebalances shift ~1/N of the keyspace, not all of it.

// DefaultVnodes is the number of virtual nodes a member of weight 1.0
// places on the ring. Larger counts tighten the variance of per-member
// ownership shares at the cost of a bigger (still tiny) sorted array.
const DefaultVnodes = 128

// Member is one weighted ring participant. Weight 0 (or negative) places
// no virtual nodes: the member stays listed but owns no keys — how the
// tier routes around a dead or fully demoted cell without forgetting it.
type Member struct {
	Name   string
	Weight float64
}

type ringPoint struct {
	pos    uint64
	member int32
}

// WeightedRing is an immutable snapshot of a weighted consistent-hash
// ring. Mutation is rebuild-and-swap: the router holds the current ring
// behind an atomic pointer, so lookups are lock-free and a re-weight
// never tears an in-flight route.
type WeightedRing struct {
	members []Member
	points  []ringPoint // sorted by pos
}

// splitmix64 is the finalizer from the splitmix64 PRNG — a cheap full-
// avalanche bijection used to place virtual nodes and to decorrelate the
// tier-level ring position from the intra-cell Primary (which consumes
// h.Hi directly).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RingPos maps a KeyHash to its position on the weighted ring. Both hash
// words feed in so tier placement is independent of both the intra-cell
// Primary (Hi) and Bucket (Lo) choices.
func RingPos(h KeyHash) uint64 {
	return splitmix64(h.Hi ^ bits.RotateLeft64(h.Lo, 32))
}

// BuildWeighted constructs a ring over members, placing
// round(weight·vnodes) virtual nodes per member (vnodes ≤ 0 takes
// DefaultVnodes). Construction is fully deterministic: virtual-node
// positions derive from hashing "name#index", so two builds from equal
// inputs route identically, and a member re-added at the same weight
// reclaims exactly its old arcs.
func BuildWeighted(members []Member, vnodes int) *WeightedRing {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &WeightedRing{members: append([]Member(nil), members...)}
	for i, m := range r.members {
		n := int(m.Weight*float64(vnodes) + 0.5)
		if m.Weight <= 0 {
			n = 0
		}
		for v := 0; v < n; v++ {
			h := DefaultHash([]byte(fmt.Sprintf("%s#%d", m.Name, v)))
			r.points = append(r.points, ringPoint{pos: RingPos(h), member: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Members returns the ring's member list (including zero-weight members).
func (r *WeightedRing) Members() []Member { return r.members }

// Owner returns the index into Members of the member owning h, or -1 if
// no member has positive weight.
func (r *WeightedRing) Owner(h KeyHash) int {
	if len(r.points) == 0 {
		return -1
	}
	pos := RingPos(h)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the lowest
	}
	return int(r.points[i].member)
}

// OwnerName returns the owning member's name, or "" if the ring is empty.
func (r *WeightedRing) OwnerName(h KeyHash) string {
	i := r.Owner(h)
	if i < 0 {
		return ""
	}
	return r.members[i].Name
}

// Shares returns each member's exact fraction of the keyspace, computed
// from arc lengths (not sampling): the arc ending at each virtual node
// belongs to that node's member. Sums to 1 for a non-empty ring.
func (r *WeightedRing) Shares() []float64 {
	shares := make([]float64, len(r.members))
	if len(r.points) == 0 {
		return shares
	}
	const scale = 1.0 / (1 << 32) / (1 << 32) // 2^-64 without overflow
	prev := r.points[len(r.points)-1].pos     // arc wraps from the last point
	for _, p := range r.points {
		arc := p.pos - prev // uint64 wraparound handles the wrap arc
		shares[p.member] += float64(arc) * scale
		prev = p.pos
	}
	return shares
}

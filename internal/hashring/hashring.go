// Package hashring implements CliqueMap's key placement: a 128-bit KeyHash
// that uniquely identifies a backend and a Bucket (§3), plus the replica
// cohort rule of §5.1 — for each key, a consistent hash determines the
// logical primary backend i, and copies live on physical backends i, i+1,
// and i+2 (all mod N).
//
// Hash functions are customizable (§6.5 added customizable hash functions
// for disaggregation users); the default is a double FNV-1a producing 128
// bits, giving the paper's "(very) rare 128-bit hash collision" property.
package hashring

// KeyHash is the 128-bit hash tag stored in IndexEntries. Collisions at
// this width are treated as effectively impossible, but clients still
// verify the full key in the fetched DataEntry (§3, step 5b).
type KeyHash struct {
	Hi, Lo uint64
}

// Zero reports whether h is the all-zero hash, reserved for empty entries.
func (h KeyHash) Zero() bool { return h.Hi == 0 && h.Lo == 0 }

// HashFunc maps a key to a KeyHash. Implementations must never return the
// zero hash for any key.
type HashFunc func(key []byte) KeyHash

// OrDefault is the canonical nil-to-default rule: every layer (client,
// backend, cell, public API) that accepts an optional HashFunc resolves
// it through here, so there is exactly one place that decides what "no
// hash configured" means.
func OrDefault(h HashFunc) HashFunc {
	if h == nil {
		return DefaultHash
	}
	return h
}

// FromPair adapts a user-supplied (hi, lo) pair function into a HashFunc,
// enforcing the never-zero invariant the index relies on (the zero hash
// marks empty slots).
func FromPair(f func(key []byte) (hi, lo uint64)) HashFunc {
	return func(key []byte) KeyHash {
		hi, lo := f(key)
		if hi == 0 && lo == 0 {
			lo = 1
		}
		return KeyHash{Hi: hi, Lo: lo}
	}
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// DefaultHash is a double FNV-1a: two independent 64-bit streams seeded
// differently, concatenated into 128 bits.
func DefaultHash(key []byte) KeyHash {
	var hi, lo uint64 = fnvOffset64, fnvOffset64 ^ 0x9e3779b97f4a7c15
	for _, c := range key {
		hi = (hi ^ uint64(c)) * fnvPrime64
		lo = (lo ^ uint64(c^0xa5)) * fnvPrime64
	}
	// Final avalanche so short keys spread across buckets.
	hi ^= hi >> 33
	hi *= 0xff51afd7ed558ccd
	hi ^= hi >> 33
	lo ^= lo >> 29
	lo *= 0xc4ceb9fe1a85ec53
	lo ^= lo >> 29
	if hi == 0 && lo == 0 {
		lo = 1 // never the reserved empty hash
	}
	return KeyHash{Hi: hi, Lo: lo}
}

// Ring maps KeyHashes to backends and buckets for a cell of N backends.
type Ring struct {
	n    int
	hash HashFunc
}

// New returns a ring over n backends using hash (DefaultHash if nil).
func New(n int, hash HashFunc) *Ring {
	if n <= 0 {
		panic("hashring: non-positive backend count")
	}
	if hash == nil {
		hash = DefaultHash
	}
	return &Ring{n: n, hash: hash}
}

// N returns the backend count.
func (r *Ring) N() int { return r.n }

// Hash returns the KeyHash for key.
func (r *Ring) Hash(key []byte) KeyHash { return r.hash(key) }

// Primary returns the logical primary backend for h, as if no replication
// existed (§5.1).
func (r *Ring) Primary(h KeyHash) int {
	return int(h.Hi % uint64(r.n))
}

// Cohort returns the physical backends hosting copies of h for the given
// replica count: i, i+1, ..., i+replicas-1 (mod N). replicas is clamped to
// N.
func (r *Ring) Cohort(h KeyHash, replicas int) []int {
	if replicas > r.n {
		replicas = r.n
	}
	if replicas < 1 {
		replicas = 1
	}
	p := r.Primary(h)
	out := make([]int, replicas)
	for i := range out {
		out[i] = (p + i) % r.n
	}
	return out
}

// CohortOf reports whether backend b hosts any replica of h.
func (r *Ring) CohortOf(h KeyHash, replicas, b int) bool {
	for _, m := range r.Cohort(h, replicas) {
		if m == b {
			return true
		}
	}
	return false
}

// Bucket returns the bucket index for h in a table of nBuckets buckets.
// The low word is used so bucket choice is independent of backend choice.
func (r *Ring) Bucket(h KeyHash, nBuckets int) int {
	if nBuckets <= 0 {
		panic("hashring: non-positive bucket count")
	}
	return int(h.Lo % uint64(nBuckets))
}

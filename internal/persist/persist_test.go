package persist_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cliquemap/internal/persist"
	"cliquemap/internal/truetime"
)

// ver builds a strictly increasing version for op i.
func ver(i int) truetime.Version {
	return truetime.Version{Micros: int64(i + 1), ClientID: 7, Seq: uint64(i + 1)}
}

// rec builds the i-th workload record: keys cycle over a small space so
// later ops overwrite earlier ones, and every fifth op is an erase.
func rec(i int) persist.Record {
	key := []byte(fmt.Sprintf("k%02d", i%7))
	if i%5 == 4 {
		return persist.Record{Op: persist.OpErase, Key: key, Version: ver(i)}
	}
	return persist.Record{Op: persist.OpSet, Key: key, Value: []byte(fmt.Sprintf("v%03d", i)), Version: ver(i)}
}

func sig(r persist.Record) string {
	return fmt.Sprintf("%d|%s|%d.%d.%d|%s", r.Op, r.Key, r.Version.Micros, r.Version.ClientID, r.Version.Seq, r.Value)
}

// model is the acked corpus: per-key latest acked record, version-gated
// exactly like the backend's replay.
type model struct {
	state map[string]persist.Record // latest record per key (set or tombstone)
}

func newModel() *model { return &model{state: make(map[string]persist.Record)} }

func (m *model) apply(r persist.Record) {
	cur, ok := m.state[string(r.Key)]
	if ok && r.Version.Less(cur.Version) {
		return
	}
	m.state[string(r.Key)] = r
}

func (m *model) live() map[string]persist.Record {
	out := make(map[string]persist.Record)
	for k, r := range m.state {
		if r.Op == persist.OpSet {
			out[k] = r
		}
	}
	return out
}

// scenario drives a workload with two checkpoint cycles against dir,
// stopping at the first injected crash. It returns the acked model and
// the signature set of every record it attempted to write (acked or not).
func scenario(t *testing.T, dir string, opt persist.Options) (*model, map[string]bool) {
	t.Helper()
	acked := newModel()
	attempted := make(map[string]bool)

	st, recd, err := persist.Open(dir, 0, opt)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(recd.Checkpoint) != 0 || len(recd.Journal) != 0 {
		t.Fatalf("fresh dir recovered %d+%d records", len(recd.Checkpoint), len(recd.Journal))
	}
	defer st.Close()

	append1 := func(i int) bool {
		r := rec(i)
		attempted[sig(r)] = true
		if aerr := st.Append(r); aerr != nil {
			return false
		}
		acked.apply(r)
		return true
	}
	checkpoint := func() bool {
		ep, rerr := st.Rotate()
		if rerr != nil {
			return false
		}
		cw, berr := st.BeginCheckpoint(ep, 42)
		if berr != nil {
			return false
		}
		for _, r := range acked.state { // live sets and tombstones both ride
			attempted[sig(r)] = true
			if werr := cw.Write(r); werr != nil {
				return false
			}
		}
		return cw.Commit() == nil
	}

	for i := 0; i < 10; i++ {
		if !append1(i) {
			return acked, attempted
		}
	}
	if !checkpoint() {
		return acked, attempted
	}
	for i := 10; i < 20; i++ {
		if !append1(i) {
			return acked, attempted
		}
	}
	if !checkpoint() {
		return acked, attempted
	}
	for i := 20; i < 25; i++ {
		if !append1(i) {
			return acked, attempted
		}
	}
	return acked, attempted
}

// recover reopens dir with no hooks and replays what Open found into a
// fresh model, version-gated like the backend.
func recoverDir(t *testing.T, dir string) (*model, *persist.Recovered) {
	t.Helper()
	st, recd, err := persist.Open(dir, 0, persist.Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer st.Close()
	got := newModel()
	for _, r := range recd.Checkpoint {
		got.apply(r)
	}
	for _, r := range recd.Journal {
		got.apply(r)
	}
	return got, recd
}

// checkRecovery asserts the two core crash-safety invariants: zero lost
// acked writes, zero fabricated entries.
func checkRecovery(t *testing.T, label string, acked *model, attempted map[string]bool, got *model, recd *persist.Recovered) {
	t.Helper()
	for k, want := range acked.live() {
		r, ok := got.live()[k]
		if !ok {
			t.Fatalf("%s: lost acked write %q (version %v)", label, k, want.Version)
		}
		if r.Version.Less(want.Version) {
			t.Fatalf("%s: key %q recovered at stale version %v < acked %v", label, k, r.Version, want.Version)
		}
	}
	for k, want := range acked.state {
		if want.Op != persist.OpErase {
			continue
		}
		if r, ok := got.live()[k]; ok && r.Version.Less(want.Version) {
			t.Fatalf("%s: acked erase of %q resurrected by stale version %v", label, k, r.Version)
		}
	}
	for _, r := range recd.Checkpoint {
		if !attempted[sig(r)] {
			t.Fatalf("%s: fabricated checkpoint record %s", label, sig(r))
		}
	}
	for _, r := range recd.Journal {
		if !attempted[sig(r)] {
			t.Fatalf("%s: fabricated journal record %s", label, sig(r))
		}
	}
}

func TestRoundTripNoCrash(t *testing.T) {
	dir := t.TempDir()
	acked, attempted := scenario(t, dir, persist.Options{})
	got, recd := recoverDir(t, dir)
	checkRecovery(t, "clean", acked, attempted, got, recd)
	if recd.CheckpointEpoch == 0 {
		t.Fatal("no checkpoint recovered after two clean cycles")
	}
	if len(got.live()) != len(acked.live()) {
		t.Fatalf("recovered %d live keys, want %d", len(got.live()), len(acked.live()))
	}
}

// TestCrashPointMatrix kills the store at every phase boundary of the
// append/rotate/checkpoint protocol — including mid-frame torn writes —
// and asserts recovery is epoch-consistent with zero lost acked writes
// and zero fabricated entries at each one.
func TestCrashPointMatrix(t *testing.T) {
	points := []string{
		"journal.append", "journal.append.torn",
		"journal.rotate",
		"checkpoint.begin", "checkpoint.header.torn",
		"checkpoint.record", "checkpoint.record.torn",
		"checkpoint.footer", "checkpoint.footer.torn",
		"checkpoint.fsync", "checkpoint.rename",
		"checkpoint.dirsync", "checkpoint.prune",
	}
	for _, point := range points {
		for _, nth := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("%s@%d", point, nth), func(t *testing.T) {
				dir := t.TempDir()
				count, fired := 0, false
				opt := persist.Options{Hook: func(p string) bool {
					if p != point {
						return false
					}
					count++
					if count == nth {
						fired = true
						return true
					}
					return false
				}}
				acked, attempted := scenario(t, dir, opt)
				if nth == 1 && !fired {
					t.Fatalf("crash point %s never reached", point)
				}
				got, recd := recoverDir(t, dir)
				checkRecovery(t, point, acked, attempted, got, recd)

				// Recovery must be stable: a second open after the
				// truncating repair sees the identical corpus.
				got2, recd2 := recoverDir(t, dir)
				if len(got2.state) != len(got.state) {
					t.Fatalf("recovery not idempotent: %d then %d records", len(got.state), len(got2.state))
				}
				if recd2.CheckpointEpoch != recd.CheckpointEpoch {
					t.Fatalf("checkpoint epoch drifted across reopens: %d then %d",
						recd.CheckpointEpoch, recd2.CheckpointEpoch)
				}
			})
		}
	}
}

// TestCrashPointMatrixSynced repeats the matrix with per-append fsync on,
// which adds the journal.fsync boundary.
func TestCrashPointMatrixSynced(t *testing.T) {
	for _, nth := range []int{1, 3} {
		t.Run(fmt.Sprintf("journal.fsync@%d", nth), func(t *testing.T) {
			dir := t.TempDir()
			count := 0
			opt := persist.Options{Sync: true, Hook: func(p string) bool {
				if p != "journal.fsync" {
					return false
				}
				count++
				return count == nth
			}}
			acked, attempted := scenario(t, dir, opt)
			got, recd := recoverDir(t, dir)
			checkRecovery(t, "journal.fsync", acked, attempted, got, recd)
		})
	}
}

// TestJournalTruncationSweep cuts a journal at every byte boundary and
// asserts the recovered records are always a clean prefix of what was
// written — never a fabrication, never a reordering.
func TestJournalTruncationSweep(t *testing.T) {
	var want []persist.Record
	file := persist.EncodeHeaderFrame(persist.Header{Kind: persist.KindJournal, Epoch: 1, Shard: 0})
	for i := 0; i < 5; i++ {
		r := rec(i)
		want = append(want, r)
		file = append(file, persist.EncodeRecordFrame(r)...)
	}
	for cut := 0; cut <= len(file); cut++ {
		h, recs, clean, err := persist.DecodeJournal(file[:cut])
		if err != nil {
			continue // headerless prefix: rejected outright, nothing recovered
		}
		if h.Epoch != 1 {
			t.Fatalf("cut=%d: header epoch %d", cut, h.Epoch)
		}
		if clean > cut {
			t.Fatalf("cut=%d: clean prefix %d overruns input", cut, clean)
		}
		if len(recs) > len(want) {
			t.Fatalf("cut=%d: fabricated %d records", cut, len(recs)-len(want))
		}
		for i, r := range recs {
			if sig(r) != sig(want[i]) {
				t.Fatalf("cut=%d: record %d = %s, want %s", cut, i, sig(r), sig(want[i]))
			}
		}
		if cut == len(file) && len(recs) != len(want) {
			t.Fatalf("whole file decoded %d records, want %d", len(recs), len(want))
		}
	}
}

// TestJournalBitFlipSweep flips every byte of a journal image and asserts
// the damage only ever truncates — recovered records stay a clean prefix.
func TestJournalBitFlipSweep(t *testing.T) {
	var want []persist.Record
	file := persist.EncodeHeaderFrame(persist.Header{Kind: persist.KindJournal, Epoch: 1, Shard: 0})
	for i := 0; i < 5; i++ {
		r := rec(i)
		want = append(want, r)
		file = append(file, persist.EncodeRecordFrame(r)...)
	}
	for pos := 0; pos < len(file); pos++ {
		flipped := append([]byte(nil), file...)
		flipped[pos] ^= 0x40
		_, recs, _, err := persist.DecodeJournal(flipped)
		if err != nil {
			continue // damaged header: whole file rejected
		}
		for i, r := range recs {
			if i >= len(want) || sig(r) != sig(want[i]) {
				t.Fatalf("flip@%d: record %d not a clean prefix", pos, i)
			}
		}
	}
}

// TestCheckpointTruncationRejected: a checkpoint image is all-or-nothing —
// any truncation or bit flip rejects the whole file.
func TestCheckpointTruncationRejected(t *testing.T) {
	file := persist.EncodeHeaderFrame(persist.Header{Kind: persist.KindCheckpoint, Epoch: 2, ConfigID: 9, Shard: 0})
	n := 0
	for i := 0; i < 5; i++ {
		file = append(file, persist.EncodeRecordFrame(rec(i))...)
		n++
	}
	file = append(file, persist.EncodeFooterFrame(uint64(n))...)
	if _, recs, err := persist.DecodeCheckpoint(file); err != nil || len(recs) != n {
		t.Fatalf("intact image: %d records, err=%v", len(recs), err)
	}
	for cut := 0; cut < len(file); cut++ {
		if _, _, err := persist.DecodeCheckpoint(file[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for pos := 0; pos < len(file); pos++ {
		flipped := append([]byte(nil), file...)
		flipped[pos] ^= 0x01
		if _, _, err := persist.DecodeCheckpoint(flipped); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
}

// TestTornTailTruncatedOnDisk: Open physically cuts a journal's torn tail
// so the next crash-recovery cycle starts from a clean file.
func TestTornTailTruncatedOnDisk(t *testing.T) {
	dir := t.TempDir()
	st, _, err := persist.Open(dir, 0, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if aerr := st.Append(rec(i)); aerr != nil {
			t.Fatal(aerr)
		}
	}
	epoch := st.Epoch()
	st.Close()

	path := filepath.Join(dir, fmt.Sprintf("wal-%016x.cm", epoch))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	garbage := append(append([]byte(nil), raw...), persist.EncodeRecordFrame(rec(9))[:7]...)
	if werr := os.WriteFile(path, garbage, 0o644); werr != nil {
		t.Fatal(werr)
	}

	st2, recd, err := persist.Open(dir, 0, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if len(recd.Journal) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recd.Journal))
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, raw) {
		t.Fatalf("torn tail not truncated on disk: %d bytes, want %d", len(fixed), len(raw))
	}
}

// TestResetWipesLineage: Reset must leave nothing recoverable.
func TestResetWipesLineage(t *testing.T) {
	dir := t.TempDir()
	st, _, err := persist.Open(dir, 0, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if aerr := st.Append(rec(i)); aerr != nil {
			t.Fatal(aerr)
		}
	}
	if rerr := st.Reset(); rerr != nil {
		t.Fatal(rerr)
	}
	st.Close()
	_, recd, err := persist.Open(dir, 0, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recd.Checkpoint)+len(recd.Journal) != 0 {
		t.Fatalf("reset lineage still recovered %d+%d records", len(recd.Checkpoint), len(recd.Journal))
	}
}

// reencodeJournal re-marshals a decode result; used as the fuzz oracle.
func reencodeJournal(h persist.Header, recs []persist.Record) []byte {
	out := persist.EncodeHeaderFrame(h)
	for _, r := range recs {
		out = append(out, persist.EncodeRecordFrame(r)...)
	}
	return out
}

// FuzzJournalDecode: whatever bytes arrive, an accepted journal's decoded
// records must re-marshal to exactly the clean prefix the decoder claims —
// so the decoder can neither fabricate entries nor mutate real ones.
func FuzzJournalDecode(f *testing.F) {
	valid := persist.EncodeHeaderFrame(persist.Header{Kind: persist.KindJournal, Epoch: 3, ConfigID: 1, Shard: 2})
	for i := 0; i < 3; i++ {
		valid = append(valid, persist.EncodeRecordFrame(rec(i))...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x80
	f.Add(flipped)
	f.Add(persist.EncodeHeaderFrame(persist.Header{Kind: persist.KindCheckpoint, Epoch: 1}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		h, recs, clean, err := persist.DecodeJournal(b)
		if err != nil {
			return
		}
		if clean > len(b) {
			t.Fatalf("clean prefix %d > input %d", clean, len(b))
		}
		if got := reencodeJournal(h, recs); !bytes.Equal(got, b[:clean]) {
			t.Fatalf("re-marshal drift: decoded records do not round-trip to the clean prefix")
		}
	})
}

// FuzzCheckpointDecode: an accepted checkpoint must be byte-for-byte
// canonical — header, records, footer, nothing else. Anything torn,
// truncated, or bit-flipped is rejected whole.
func FuzzCheckpointDecode(f *testing.F) {
	valid := persist.EncodeHeaderFrame(persist.Header{Kind: persist.KindCheckpoint, Epoch: 5, ConfigID: 2, Shard: 1})
	for i := 0; i < 3; i++ {
		valid = append(valid, persist.EncodeRecordFrame(rec(i))...)
	}
	valid = append(valid, persist.EncodeFooterFrame(3)...)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0x04
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		h, recs, err := persist.DecodeCheckpoint(b)
		if err != nil {
			return
		}
		out := persist.EncodeHeaderFrame(h)
		for _, r := range recs {
			out = append(out, persist.EncodeRecordFrame(r)...)
		}
		out = append(out, persist.EncodeFooterFrame(uint64(len(recs)))...)
		if !bytes.Equal(out, b) {
			t.Fatalf("accepted checkpoint is not canonical: re-marshal differs")
		}
	})
}

// Package persist is CliqueMap's durability plane: per-task checkpoint +
// write-ahead journal files that let a crashed backend rejoin its cohort
// warm (§5.4's repair story without the repair storm).
//
// # File layout
//
// A Store owns one directory holding an epoch-stamped lineage:
//
//	ckpt-<epoch>.cm   full corpus snapshot taken at the epoch's rotation
//	wal-<epoch>.cm    append-only mutation journal for that epoch
//	ckpt.tmp          in-flight checkpoint (never recovered from)
//
// Both file kinds share one frame codec: a 4-byte little-endian payload
// length, the payload's 64-bit checksum (internal/checksum, the same
// CRC32C+mix the RMA DataEntry format uses), then the payload. A file is
// a header frame, record frames, and — for checkpoints only — a footer
// frame carrying the record count. Frames are written in
// rmem.WriteChunk-sized slices, mirroring the region write discipline, so
// a torn write is bounded to a suffix of one frame.
//
// # Crash safety
//
// The recovery rule tolerates a crash at ANY byte boundary:
//
//   - A checkpoint becomes real only via tmp-write → fsync → atomic
//     rename → directory fsync. A torn checkpoint is either an ignored
//     ckpt.tmp or a ckpt-*.cm that fails footer/count validation and is
//     skipped in favour of the previous epoch's.
//   - A journal's torn tail (length or checksum mismatch, including any
//     bit flip) cleanly truncates the file at the last whole frame; the
//     mutation being appended at the moment of death was never
//     acknowledged, so dropping it loses nothing acked.
//   - Old epochs are pruned only after the newer checkpoint is durable,
//     so recovery always finds a footer-valid checkpoint (or the empty
//     epoch-0 corpus) plus every journal at or after its epoch.
//
// Recovery therefore loads the highest footer-valid checkpoint and
// replays all wal-*.cm with epoch ≥ that checkpoint's, in ascending epoch
// order. Replay on the backend side is version-gated and idempotent, so
// journals that partially overlap the checkpoint (the checkpoint scan is
// stripe-by-stripe, concurrent with appends) re-apply harmlessly.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cliquemap/internal/checksum"
	"cliquemap/internal/rmem"
	"cliquemap/internal/truetime"
)

// Record ops.
const (
	OpSet   = byte(1) // install Key=Value at Version
	OpErase = byte(2) // tombstone Key at Version
)

// Frame kinds (first payload byte).
const (
	frameHeader = byte(0x10)
	frameRecord = byte(0x20)
	frameFooter = byte(0x30)
)

// File kinds (header field).
const (
	KindCheckpoint = byte('C')
	KindJournal    = byte('W')
)

const (
	magic         = uint64(0x434d50455253_0001) // "CMPERS" + format v1
	frameOverhead = 4 + 8                       // length + checksum
	// maxFrame bounds a single frame so hostile length prefixes cannot
	// drive huge allocations (fuzz discipline; generous for real values).
	maxFrame = 64 << 20
)

// ErrCrashed is returned by every Store method after an injected crash
// point has fired: the store simulates a dead process — whatever bytes
// were written stay on disk, nothing further is written.
var ErrCrashed = errors.New("persist: simulated crash")

// Record is one durable mutation or checkpoint entry.
type Record struct {
	Op      byte
	Key     []byte
	Value   []byte // nil for OpErase
	Version truetime.Version
}

// Header identifies a persist file.
type Header struct {
	Kind     byte
	Epoch    uint64
	ConfigID uint64
	Shard    int64
}

// Options configures a Store.
type Options struct {
	// Hook, when set, is consulted at named phase boundaries; returning
	// true simulates process death at that point (the store goes dead and
	// every later call returns ErrCrashed). Mid-frame points ("*.torn")
	// leave a half-written frame behind, exactly like a real torn write.
	Hook func(point string) bool
	// Sync fsyncs the journal after every append. Off by default: the OS
	// page cache survives kill -9 (the crash mode the cell's restart story
	// targets), and power-loss durability costs an fsync per mutation.
	Sync bool
}

// Recovered is what Open found on disk.
type Recovered struct {
	CheckpointEpoch uint64   // epoch of the loaded checkpoint (0: none)
	ConfigID        uint64   // config stamp of that checkpoint
	Checkpoint      []Record // checkpoint corpus, file order
	Journal         []Record // journal tail, ascending epoch + append order
	Epoch           uint64   // the store's new live epoch
}

// Store manages one task's durable lineage. Append is safe under the
// caller's stripe locks (Store.mu is a leaf mutex); Rotate and checkpoints
// are driven by the backend with its own barriers.
type Store struct {
	dir   string
	shard int64
	opt   Options

	mu          sync.Mutex
	dead        bool
	epoch       uint64
	wal         *os.File
	walRecords  uint64
	walBytes    uint64
	ckptEpoch   uint64
	ckptUnixNs  int64
	encodeBuf   []byte
	totalOnDisk uint64 // records appended over the store's lifetime (debug)
}

// die consults the crash hook.
func (s *Store) die(point string) bool {
	if s.dead {
		return true
	}
	if s.opt.Hook != nil && s.opt.Hook(point) {
		s.dead = true
		return true
	}
	return false
}

// Dead reports whether an injected crash point has fired.
func (s *Store) Dead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// ------------------------------------------------------------- encoding --

func appendFrame(dst, payload []byte) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	dst = append(dst, n[:]...)
	var c [8]byte
	binary.LittleEndian.PutUint64(c[:], checksum.Sum(payload))
	dst = append(dst, c[:]...)
	return append(dst, payload...)
}

func appendHeaderPayload(dst []byte, h Header) []byte {
	var b [1 + 1 + 8 + 8 + 8 + 8]byte
	b[0] = frameHeader
	b[1] = h.Kind
	binary.LittleEndian.PutUint64(b[2:], magic)
	binary.LittleEndian.PutUint64(b[10:], h.Epoch)
	binary.LittleEndian.PutUint64(b[18:], h.ConfigID)
	binary.LittleEndian.PutUint64(b[26:], uint64(h.Shard))
	return append(dst, b[:]...)
}

func appendRecordPayload(dst []byte, r Record) []byte {
	var b [1 + 1 + 8 + 8 + 8 + 4]byte
	b[0] = frameRecord
	b[1] = r.Op
	binary.LittleEndian.PutUint64(b[2:], uint64(r.Version.Micros))
	binary.LittleEndian.PutUint64(b[10:], r.Version.ClientID)
	binary.LittleEndian.PutUint64(b[18:], r.Version.Seq)
	binary.LittleEndian.PutUint32(b[26:], uint32(len(r.Key)))
	dst = append(dst, b[:]...)
	dst = append(dst, r.Key...)
	var vl [4]byte
	binary.LittleEndian.PutUint32(vl[:], uint32(len(r.Value)))
	dst = append(dst, vl[:]...)
	return append(dst, r.Value...)
}

func appendFooterPayload(dst []byte, count uint64) []byte {
	var b [1 + 8]byte
	b[0] = frameFooter
	binary.LittleEndian.PutUint64(b[1:], count)
	return append(dst, b[:]...)
}

// EncodeHeaderFrame returns a header frame (exposed for fuzz seeding).
func EncodeHeaderFrame(h Header) []byte { return appendFrame(nil, appendHeaderPayload(nil, h)) }

// EncodeRecordFrame returns a record frame (exposed for fuzz seeding).
func EncodeRecordFrame(r Record) []byte { return appendFrame(nil, appendRecordPayload(nil, r)) }

// EncodeFooterFrame returns a footer frame (exposed for fuzz seeding).
func EncodeFooterFrame(count uint64) []byte { return appendFrame(nil, appendFooterPayload(nil, count)) }

// ------------------------------------------------------------- decoding --

// nextFrame returns the payload of the frame at b[off:] and the offset
// after it; ok=false when the remaining bytes are not one whole, valid
// frame (torn tail, bit flip, or hostile length).
func nextFrame(b []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameOverhead > len(b) {
		return nil, off, false
	}
	n := int(binary.LittleEndian.Uint32(b[off:]))
	if n > maxFrame || off+frameOverhead+n > len(b) {
		return nil, off, false
	}
	sum := binary.LittleEndian.Uint64(b[off+4:])
	payload = b[off+frameOverhead : off+frameOverhead+n]
	if checksum.Sum(payload) != sum {
		return nil, off, false
	}
	return payload, off + frameOverhead + n, true
}

func decodeHeaderPayload(p []byte) (Header, error) {
	if len(p) != 1+1+8+8+8+8 || p[0] != frameHeader {
		return Header{}, errors.New("persist: malformed header frame")
	}
	h := Header{
		Kind:     p[1],
		Epoch:    binary.LittleEndian.Uint64(p[10:]),
		ConfigID: binary.LittleEndian.Uint64(p[18:]),
		Shard:    int64(binary.LittleEndian.Uint64(p[26:])),
	}
	if binary.LittleEndian.Uint64(p[2:]) != magic {
		return Header{}, errors.New("persist: bad magic")
	}
	if h.Kind != KindCheckpoint && h.Kind != KindJournal {
		return Header{}, errors.New("persist: unknown file kind")
	}
	return h, nil
}

func decodeRecordPayload(p []byte) (Record, error) {
	const fixed = 1 + 1 + 8 + 8 + 8 + 4
	if len(p) < fixed || p[0] != frameRecord {
		return Record{}, errors.New("persist: malformed record frame")
	}
	r := Record{
		Op: p[1],
		Version: truetime.Version{
			Micros:   int64(binary.LittleEndian.Uint64(p[2:])),
			ClientID: binary.LittleEndian.Uint64(p[10:]),
			Seq:      binary.LittleEndian.Uint64(p[18:]),
		},
	}
	if r.Op != OpSet && r.Op != OpErase {
		return Record{}, errors.New("persist: unknown record op")
	}
	klen := int(binary.LittleEndian.Uint32(p[26:]))
	if klen < 0 || fixed+klen+4 > len(p) {
		return Record{}, errors.New("persist: key length overruns frame")
	}
	r.Key = append([]byte(nil), p[fixed:fixed+klen]...)
	vlen := int(binary.LittleEndian.Uint32(p[fixed+klen:]))
	if vlen < 0 || fixed+klen+4+vlen != len(p) {
		return Record{}, errors.New("persist: value length mismatches frame")
	}
	if r.Op == OpErase && vlen != 0 {
		return Record{}, errors.New("persist: erase record carries a value")
	}
	if vlen > 0 || r.Op == OpSet {
		r.Value = append([]byte(nil), p[fixed+klen+4:]...)
	}
	return r, nil
}

func decodeFooterPayload(p []byte) (uint64, error) {
	if len(p) != 1+8 || p[0] != frameFooter {
		return 0, errors.New("persist: malformed footer frame")
	}
	return binary.LittleEndian.Uint64(p[1:]), nil
}

// DecodeCheckpoint strictly validates a checkpoint image: header frame,
// record frames, footer frame whose count matches, and nothing after the
// footer. Anything less — torn tail, bit flip, truncation — rejects the
// whole image (recovery then falls back to the previous epoch).
func DecodeCheckpoint(b []byte) (Header, []Record, error) {
	p, off, ok := nextFrame(b, 0)
	if !ok {
		return Header{}, nil, errors.New("persist: checkpoint missing header frame")
	}
	h, err := decodeHeaderPayload(p)
	if err != nil {
		return Header{}, nil, err
	}
	if h.Kind != KindCheckpoint {
		return Header{}, nil, errors.New("persist: not a checkpoint file")
	}
	var recs []Record
	for {
		p, next, ok := nextFrame(b, off)
		if !ok {
			return Header{}, nil, errors.New("persist: checkpoint torn before footer")
		}
		off = next
		if len(p) > 0 && p[0] == frameFooter {
			count, ferr := decodeFooterPayload(p)
			if ferr != nil {
				return Header{}, nil, ferr
			}
			if count != uint64(len(recs)) {
				return Header{}, nil, fmt.Errorf("persist: footer count %d != %d records", count, len(recs))
			}
			if off != len(b) {
				return Header{}, nil, errors.New("persist: trailing bytes after footer")
			}
			return h, recs, nil
		}
		r, rerr := decodeRecordPayload(p)
		if rerr != nil {
			return Header{}, nil, rerr
		}
		recs = append(recs, r)
	}
}

// DecodeJournal validates a journal image, returning every whole valid
// record frame before the first damage and the byte length of that clean
// prefix. A torn or bit-flipped tail truncates (never fabricates); only a
// missing or invalid header frame rejects the file outright.
func DecodeJournal(b []byte) (Header, []Record, int, error) {
	p, off, ok := nextFrame(b, 0)
	if !ok {
		return Header{}, nil, 0, errors.New("persist: journal missing header frame")
	}
	h, err := decodeHeaderPayload(p)
	if err != nil {
		return Header{}, nil, 0, err
	}
	if h.Kind != KindJournal {
		return Header{}, nil, 0, errors.New("persist: not a journal file")
	}
	var recs []Record
	clean := off
	for {
		p, next, ok := nextFrame(b, off)
		if !ok {
			return h, recs, clean, nil // torn tail: stop at the last whole frame
		}
		r, rerr := decodeRecordPayload(p)
		if rerr != nil {
			return h, recs, clean, nil // damaged frame: treat as torn from here
		}
		recs = append(recs, r)
		off, clean = next, next
	}
}

// --------------------------------------------------------------- naming --

func ckptName(epoch uint64) string { return fmt.Sprintf("ckpt-%016x.cm", epoch) }
func walName(epoch uint64) string  { return fmt.Sprintf("wal-%016x.cm", epoch) }

func parseName(name string) (kind byte, epoch uint64, ok bool) {
	var e uint64
	if n, err := fmt.Sscanf(name, "ckpt-%016x.cm", &e); err == nil && n == 1 {
		return KindCheckpoint, e, true
	}
	if n, err := fmt.Sscanf(name, "wal-%016x.cm", &e); err == nil && n == 1 {
		return KindJournal, e, true
	}
	return 0, 0, false
}

// ----------------------------------------------------------------- open --

// Open loads dir's lineage (highest footer-valid checkpoint + journal
// tail), rotates to a fresh journal epoch, and returns the store plus
// what it recovered. The caller replays Recovered into its in-memory
// state before serving.
func Open(dir string, shard int, opt Options) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir, shard: int64(shard), opt: opt}
	_ = os.Remove(filepath.Join(dir, "ckpt.tmp")) // never recovered from

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var ckptEpochs, walEpochs []uint64
	maxEpoch := uint64(0)
	for _, e := range entries {
		kind, ep, ok := parseName(e.Name())
		if !ok {
			continue
		}
		if ep > maxEpoch {
			maxEpoch = ep
		}
		if kind == KindCheckpoint {
			ckptEpochs = append(ckptEpochs, ep)
		} else {
			walEpochs = append(walEpochs, ep)
		}
	}
	sort.Slice(ckptEpochs, func(i, j int) bool { return ckptEpochs[i] > ckptEpochs[j] })
	sort.Slice(walEpochs, func(i, j int) bool { return walEpochs[i] < walEpochs[j] })

	rec := &Recovered{}
	for _, ep := range ckptEpochs { // newest first; fall back past torn images
		raw, rerr := os.ReadFile(filepath.Join(dir, ckptName(ep)))
		if rerr != nil {
			continue
		}
		h, recs, derr := DecodeCheckpoint(raw)
		if derr != nil || h.Epoch != ep {
			continue
		}
		rec.CheckpointEpoch, rec.ConfigID, rec.Checkpoint = ep, h.ConfigID, recs
		s.ckptEpoch = ep
		if fi, ferr := os.Stat(filepath.Join(dir, ckptName(ep))); ferr == nil {
			s.ckptUnixNs = fi.ModTime().UnixNano()
		}
		break
	}
	for _, ep := range walEpochs {
		if ep < rec.CheckpointEpoch {
			continue // subsumed by the checkpoint; pruning just hadn't finished
		}
		path := filepath.Join(dir, walName(ep))
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			continue
		}
		h, recs, clean, derr := DecodeJournal(raw)
		if derr != nil || h.Epoch != ep {
			continue // headerless/foreign file: no frames are trustworthy
		}
		if clean < len(raw) {
			_ = os.Truncate(path, int64(clean)) // cut the torn tail
		}
		rec.Journal = append(rec.Journal, recs...)
	}

	s.epoch = maxEpoch + 1
	rec.Epoch = s.epoch
	if err := s.openWAL(); err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

// openWAL creates wal-<s.epoch>.cm with its header frame. s.mu not needed:
// called from Open and under mu from Rotate.
func (s *Store) openWAL() error {
	f, err := os.OpenFile(filepath.Join(s.dir, walName(s.epoch)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	hdr := appendFrame(nil, appendHeaderPayload(nil, Header{
		Kind: KindJournal, Epoch: s.epoch, ConfigID: 0, Shard: s.shard,
	}))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	s.wal = f
	s.walRecords, s.walBytes = 0, uint64(len(hdr))
	return nil
}

// writeChunked writes b to f in rmem.WriteChunk slices — the same publish
// granularity the RMA regions use — consulting the crash hook before each
// slice. A fired "<point>.torn" leaves half the remaining frame behind,
// the worst torn state a real death mid-write can produce.
func (s *Store) writeChunked(f *os.File, b []byte, point string) error {
	if s.die(point + ".torn") {
		_, _ = f.Write(b[:len(b)/2])
		return ErrCrashed
	}
	for i := 0; i < len(b); i += rmem.WriteChunk {
		end := i + rmem.WriteChunk
		if end > len(b) {
			end = len(b)
		}
		if _, err := f.Write(b[i:end]); err != nil {
			return err
		}
	}
	return nil
}

// --------------------------------------------------------------- append --

// Append journals one mutation. Callers hold the mutated key's stripe
// lock, which orders appends against checkpoint rotation; Store.mu is a
// leaf below it serializing appends from different stripes.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.die("journal.append") {
		return ErrCrashed
	}
	s.encodeBuf = appendFrame(s.encodeBuf[:0], appendRecordPayload(nil, r))
	if err := s.writeChunked(s.wal, s.encodeBuf, "journal.append"); err != nil {
		return err
	}
	if s.opt.Sync {
		if s.die("journal.fsync") {
			return ErrCrashed
		}
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}
	s.walRecords++
	s.walBytes += uint64(len(s.encodeBuf))
	s.totalOnDisk++
	return nil
}

// Depth returns the live journal's record and byte counts.
func (s *Store) Depth() (records, bytes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords, s.walBytes
}

// Epoch returns the live journal epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// CheckpointState returns the last durable checkpoint's epoch and mtime.
func (s *Store) CheckpointState() (epoch uint64, unixNano int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptEpoch, s.ckptUnixNs
}

// --------------------------------------------------------- checkpointing --

// Rotate closes the live journal and opens the next epoch's. The caller
// must hold a barrier excluding all appends (the backend holds every
// stripe lock), so the old journal is exactly the pre-rotation mutation
// set and the upcoming checkpoint covers all of it.
func (s *Store) Rotate() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.die("journal.rotate") {
		return 0, ErrCrashed
	}
	if s.wal != nil {
		_ = s.wal.Sync()
		_ = s.wal.Close()
	}
	s.epoch++
	if err := s.openWAL(); err != nil {
		return 0, err
	}
	return s.epoch, nil
}

// CheckpointWriter streams a corpus snapshot into ckpt.tmp, committing it
// atomically as ckpt-<epoch>.cm.
type CheckpointWriter struct {
	s     *Store
	f     *os.File
	epoch uint64
	count uint64
	buf   []byte
}

// BeginCheckpoint opens the temp image for the given epoch (normally the
// result of Rotate) stamped with the backend's config ID.
func (s *Store) BeginCheckpoint(epoch, configID uint64) (*CheckpointWriter, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.die("checkpoint.begin") {
		return nil, ErrCrashed
	}
	f, err := os.OpenFile(filepath.Join(s.dir, "ckpt.tmp"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	cw := &CheckpointWriter{s: s, f: f, epoch: epoch}
	cw.buf = appendFrame(nil, appendHeaderPayload(nil, Header{
		Kind: KindCheckpoint, Epoch: epoch, ConfigID: configID, Shard: s.shard,
	}))
	if werr := s.writeChunked(f, cw.buf, "checkpoint.header"); werr != nil {
		f.Close()
		return nil, werr
	}
	return cw, nil
}

// Write appends one corpus record to the image.
func (cw *CheckpointWriter) Write(r Record) error {
	cw.s.mu.Lock()
	defer cw.s.mu.Unlock()
	if cw.s.die("checkpoint.record") {
		return ErrCrashed
	}
	cw.buf = appendFrame(cw.buf[:0], appendRecordPayload(nil, r))
	if err := cw.s.writeChunked(cw.f, cw.buf, "checkpoint.record"); err != nil {
		return err
	}
	cw.count++
	return nil
}

// Commit seals the image (footer → fsync → rename → dir fsync) and prunes
// every older epoch's files, which are now subsumed.
func (cw *CheckpointWriter) Commit() error {
	s := cw.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.die("checkpoint.footer") {
		cw.f.Close()
		return ErrCrashed
	}
	cw.buf = appendFrame(cw.buf[:0], appendFooterPayload(nil, cw.count))
	if err := s.writeChunked(cw.f, cw.buf, "checkpoint.footer"); err != nil {
		cw.f.Close()
		return err
	}
	if s.die("checkpoint.fsync") {
		cw.f.Close()
		return ErrCrashed
	}
	if err := cw.f.Sync(); err != nil {
		cw.f.Close()
		return err
	}
	if err := cw.f.Close(); err != nil {
		return err
	}
	if s.die("checkpoint.rename") {
		return ErrCrashed
	}
	final := filepath.Join(s.dir, ckptName(cw.epoch))
	if err := os.Rename(filepath.Join(s.dir, "ckpt.tmp"), final); err != nil {
		return err
	}
	if s.die("checkpoint.dirsync") {
		return ErrCrashed
	}
	syncDir(s.dir)
	s.ckptEpoch = cw.epoch
	s.ckptUnixNs = time.Now().UnixNano()
	if s.die("checkpoint.prune") {
		return ErrCrashed
	}
	s.pruneLocked(cw.epoch)
	return nil
}

// Abort discards the in-flight image.
func (cw *CheckpointWriter) Abort() {
	_ = cw.f.Close()
	_ = os.Remove(filepath.Join(cw.s.dir, "ckpt.tmp"))
}

// pruneLocked removes every lineage file older than keepEpoch.
func (s *Store) pruneLocked(keepEpoch uint64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if _, ep, ok := parseName(e.Name()); !ok || ep >= keepEpoch {
			continue
		}
		_ = os.Remove(filepath.Join(s.dir, e.Name()))
	}
}

// syncDir fsyncs a directory so a just-renamed file's dirent is durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// ---------------------------------------------------------------- reset --

// Reset wipes the lineage and starts a fresh epoch — used when the
// backend's corpus is discarded wholesale (a shrink demoted it to a
// spare), so a later crash cannot resurrect dropped keys.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrCrashed
	}
	if s.wal != nil {
		_ = s.wal.Close()
		s.wal = nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if _, _, ok := parseName(e.Name()); ok || e.Name() == "ckpt.tmp" {
			_ = os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	s.epoch++
	s.ckptEpoch, s.ckptUnixNs = 0, 0
	return s.openWAL()
}

// Close releases the journal handle (final; the store is unusable after).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	s.dead = true
	return err
}

// Dir returns the store's directory (telemetry).
func (s *Store) Dir() string { return s.dir }

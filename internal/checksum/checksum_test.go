package checksum

import (
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	a := Sum([]byte("key"), []byte("value"))
	b := Sum([]byte("key"), []byte("value"))
	if a != b {
		t.Errorf("Sum not deterministic: %x != %x", a, b)
	}
}

func TestSumNeverZero(t *testing.T) {
	if Sum() == 0 || Sum(nil) == 0 || Sum([]byte{}) == 0 {
		t.Error("Sum of empty input must not be zero")
	}
	if SumMeta(nil, nil) == 0 {
		t.Error("SumMeta of empty input must not be zero")
	}
}

func TestSumBoundaryShift(t *testing.T) {
	// "ab"+"c" must differ from "a"+"bc": part boundaries are significant.
	if Sum([]byte("ab"), []byte("c")) == Sum([]byte("a"), []byte("bc")) {
		t.Error("boundary shift collision")
	}
}

func TestSumDetectsSingleBitFlip(t *testing.T) {
	key := []byte("some-key")
	val := make([]byte, 256)
	for i := range val {
		val[i] = byte(i)
	}
	want := Sum(key, val)
	for i := range val {
		for bit := 0; bit < 8; bit++ {
			val[i] ^= 1 << bit
			if Sum(key, val) == want {
				t.Fatalf("bit flip at byte %d bit %d undetected", i, bit)
			}
			val[i] ^= 1 << bit
		}
	}
}

func TestSumMetaSensitivity(t *testing.T) {
	k, v := []byte("k"), []byte("v")
	base := SumMeta(k, v, 1, 2)
	if SumMeta(k, v, 1, 3) == base {
		t.Error("meta word change undetected")
	}
	if SumMeta(k, v, 2, 1) == base {
		t.Error("meta word order change undetected")
	}
	if SumMeta(k, v, 1) == base {
		t.Error("meta word count change undetected")
	}
}

func TestSumProperty(t *testing.T) {
	// Property: different (key,value) pairs virtually never collide, and
	// identical pairs always agree.
	f := func(k1, v1, k2, v2 []byte) bool {
		s1 := Sum(k1, v1)
		s2 := Sum(k2, v2)
		same := string(k1) == string(k2) && string(v1) == string(v2)
		if same {
			return s1 == s2
		}
		return s1 != s2 // CRC64 collision on random short inputs: ~impossible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSum4KB(b *testing.B) {
	key := []byte("benchmark-key")
	val := make([]byte, 4096)
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum(key, val)
	}
}

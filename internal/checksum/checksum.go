// Package checksum provides the end-to-end entry checksum that makes
// CliqueMap responses self-validating (§3 of the paper, after Pilaf).
//
// Every KV pair stored in a backend is guarded by a checksum computed over
// its key, value, and metadata (version number and layout pointer). Because
// RMA reads are not atomic with respect to server-side mutation, a client
// that fetches a DataEntry mid-SET can observe a torn state; the checksum is
// the mechanism that detects it. Torn reads are rare but normal — detection
// plus client retry replaces server-side locking.
package checksum

import "hash/crc64"

// table uses the ECMA polynomial, the conventional choice for storage
// integrity checks.
var table = crc64.MakeTable(crc64.ECMA)

// Sum computes the entry checksum over the concatenation of its parts.
// Parts are length-prefixed implicitly by the caller's fixed layout; mixing
// a per-part rotation here guards against boundary-shift collisions
// (e.g. key="ab",val="c" vs key="a",val="bc").
func Sum(parts ...[]byte) uint64 {
	var s uint64
	for _, p := range parts {
		s = s<<1 | s>>63 // rotate to make part boundaries significant
		s ^= crc64.Update(0, table, p)
	}
	// Avoid the all-zeroes checksum so a zeroed (freshly allocated or
	// nullified) entry never validates.
	if s == 0 {
		s = 1
	}
	return s
}

// SumMeta folds small fixed metadata (version, pointer words) into a
// checksum without allocating.
func SumMeta(key, value []byte, meta ...uint64) uint64 {
	var mb [8]byte
	s := Sum(key, value)
	for _, m := range meta {
		mb[0] = byte(m)
		mb[1] = byte(m >> 8)
		mb[2] = byte(m >> 16)
		mb[3] = byte(m >> 24)
		mb[4] = byte(m >> 32)
		mb[5] = byte(m >> 40)
		mb[6] = byte(m >> 48)
		mb[7] = byte(m >> 56)
		s = s<<1 | s>>63
		s ^= crc64.Update(0, table, mb[:])
	}
	if s == 0 {
		s = 1
	}
	return s
}

// Package checksum provides the end-to-end entry checksum that makes
// CliqueMap responses self-validating (§3 of the paper, after Pilaf).
//
// Every KV pair stored in a backend is guarded by a checksum computed over
// its key, value, and metadata (version number and layout pointer). Because
// RMA reads are not atomic with respect to server-side mutation, a client
// that fetches a DataEntry mid-SET can observe a torn state; the checksum is
// the mechanism that detects it. Torn reads are rare but normal — detection
// plus client retry replaces server-side locking.
//
// The byte hash is CRC32-C (Castagnoli), the standard storage-integrity
// polynomial, chosen because it is hardware-accelerated (SSE4.2, ARMv8 CRC)
// and the checksum runs on every SET and every decode; per-part results are
// widened into a rotating 64-bit accumulator so the stored checksum keeps
// its 64-bit field.
package checksum

import "hash/crc32"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// mix64 is the splitmix64 finalizer: a cheap bijective mixer that spreads a
// 32-bit CRC or a raw metadata word across all 64 accumulator bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sum computes the entry checksum over the concatenation of its parts.
// Parts are length-prefixed implicitly by the caller's fixed layout; mixing
// a per-part rotation here guards against boundary-shift collisions
// (e.g. key="ab",val="c" vs key="a",val="bc").
func Sum(parts ...[]byte) uint64 {
	var s uint64
	for _, p := range parts {
		s = s<<1 | s>>63 // rotate to make part boundaries significant
		// +1 so an empty part still perturbs the sum (crc of "" is 0).
		s ^= mix64(uint64(crc32.Update(0, castagnoli, p)) + 1)
	}
	// Avoid the all-zeroes checksum so a zeroed (freshly allocated or
	// nullified) entry never validates.
	if s == 0 {
		s = 1
	}
	return s
}

// SumMeta folds small fixed metadata (version, pointer words) into a
// checksum without allocating. Metadata words skip the byte hash entirely:
// they are fixed-width, so the mixer alone is collision-resistant for them.
func SumMeta(key, value []byte, meta ...uint64) uint64 {
	s := Sum(key, value)
	for _, m := range meta {
		s = s<<1 | s>>63
		// Offset by an odd constant so m=0 still perturbs the sum and
		// dropping a trailing zero word changes the checksum.
		s ^= mix64(m + 0x9e3779b97f4a7c15)
	}
	if s == 0 {
		s = 1
	}
	return s
}

#!/usr/bin/env bash
# loadwall_smoke.sh — end-to-end smoke of the load-wall capacity harness
# and the saturation observability plane: the open-loop generator's
# coordinated-omission tests run under the race detector, the StatsResp
# saturation tags replay their fuzz seed corpus, a live cmcell must
# render the cmstat SATURATION table and export the Prometheus
# saturation gauges, and cmbench -fig loadwall must find a knee for
# every sweep row and name the limiting resource. Exits non-zero on any
# missed expectation.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
trap 'kill -9 $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

# Phase 1: the harness itself. The fake-clock tests assert latency is
# charged from the scheduled send time (no coordinated omission), and
# the generator/knee-search internals are race-clean.
go test -race ./internal/loadwall/
echo "phase 1: loadwall harness race-clean"

# Phase 2: the saturation wire frames. FuzzStatsResp replays hostile
# StatsResp encodings covering the saturation tags (27-41).
go test -run 'FuzzStatsResp' ./internal/core/proto/
echo "phase 2: StatsResp fuzz seed corpus clean"

# Phase 3: a live cell must surface the saturation plane end to end.
go build -o "$BIN/cmcell" ./cmd/cmcell
go build -o "$BIN/cmstat" ./cmd/cmstat
go build -o "$BIN/cmbench" ./cmd/cmbench

"$BIN/cmcell" -shards 3 -spares 0 -keys 200 -ops 2000000 -getfrac 0.9 \
  -probes 0 -listen 127.0.0.1:7078 -http 127.0.0.1:7079 >"$BIN/cell.log" 2>&1 &
PID=$!
for attempt in $(seq 1 60); do
  grep -q "preloaded 200 keys" "$BIN/cell.log" && break
  kill -0 "$PID" 2>/dev/null || { echo "cell died early:" >&2; cat "$BIN/cell.log" >&2; exit 1; }
  [ "$attempt" -eq 60 ] && { echo "preload never finished" >&2; cat "$BIN/cell.log" >&2; exit 1; }
  sleep 1
done

for attempt in $(seq 1 30); do
  if OUT="$("$BIN/cmstat" -gateway 127.0.0.1:7078 2>/dev/null)"; then break; fi
  [ "$attempt" -eq 30 ] && { echo "cmstat never connected" >&2; exit 1; }
  sleep 1
done
echo "== cmstat =="
echo "$OUT"
grep -q "SATURATION" <<<"$OUT" || { echo "cmstat missing SATURATION table" >&2; exit 1; }

# -watch must render per-interval saturation rates without dying.
WOUT="$(timeout 15 "$BIN/cmstat" -gateway 127.0.0.1:7078 -watch 1s 2>/dev/null | head -120 || true)"
grep -q "QWAIT s/s" <<<"$WOUT" || { echo "cmstat -watch missing interval saturation columns" >&2; exit 1; }

PROM="$(curl -sf http://127.0.0.1:7079/metrics)"
for metric in cliquemap_rpc_workers cliquemap_rpc_utilization cliquemap_stripe_lock_contended_total cliquemap_nic_engines; do
  grep -q "$metric" <<<"$PROM" || { echo "/metrics missing $metric" >&2; exit 1; }
done
kill -9 "$PID" 2>/dev/null || true
echo "phase 3: live SATURATION table + Prometheus gauges render"

# Phase 4: the capacity harness must find a load wall for every sweep
# row and name what it hit. Every knee column must be a positive rate
# and no row may report an unidentified wall.
"$BIN/cmbench" -fig loadwall >"$BIN/loadwall.out"
echo "== cmbench -fig loadwall =="
cat "$BIN/loadwall.out"
KNEES="$(grep -c "qps" "$BIN/loadwall.out" || true)"
[ "$KNEES" -ge 6 ] || { echo "expected >= 6 knee rows, got $KNEES" >&2; exit 1; }
grep -Eq "nic-engines|rpc-workers|downlink|stripe-locks|retry-budget" "$BIN/loadwall.out" \
  || { echo "no limiting resource named" >&2; exit 1; }
if grep -qw "none" "$BIN/loadwall.out"; then
  echo "a sweep row found no knee (limit=none)" >&2; exit 1
fi

echo "loadwall smoke OK"

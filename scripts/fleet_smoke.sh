#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end smoke of the fleet observability plane
# against real processes: three cmcell gateways serve their RPC surface
# over TCP, and cmstat -fleet scrapes, merges, and renders them in all
# three output modes (table, -json, -prom). Exits non-zero if any cell
# fails to come up, a scrape round reports a dead or stale cell, or the
# merged view is missing its core sections.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cmcell" ./cmd/cmcell
go build -o "$BIN/cmstat" ./cmd/cmstat

PORTS=(7070 7071 7072)
NAMES=(us eu asia)
SPEC=""
for i in 0 1 2; do
  "$BIN/cmcell" -shards 2 -spares 0 -keys 200 -ops 3000 -probes 10 \
    -listen "127.0.0.1:${PORTS[$i]}" >"$BIN/cell$i.log" 2>&1 &
  SPEC+="${SPEC:+,}${NAMES[$i]}=127.0.0.1:${PORTS[$i]}"
done

# Wait for all three gateways: a scrape round counts as ready only when
# every cell answers live (no DOWN, no STALE rows).
for attempt in $(seq 1 30); do
  if OUT="$("$BIN/cmstat" -fleet "$SPEC" 2>/dev/null)" &&
     grep -q "fleet: 3/3 cells live" <<<"$OUT"; then
    break
  fi
  if [ "$attempt" -eq 30 ]; then
    echo "fleet never came live; last cell logs:" >&2
    tail -5 "$BIN"/cell*.log >&2
    exit 1
  fi
  sleep 1
done

echo "== merged table =="
echo "$OUT"
for want in "fleet: 3/3 cells live" "KIND" "SLO CLASS" "GLOBAL HOT KEY"; do
  grep -q "$want" <<<"$OUT" || { echo "table missing '$want'" >&2; exit 1; }
done
for cell in "${NAMES[@]}"; do
  grep -q "^$cell" <<<"$OUT" || { echo "table missing cell $cell" >&2; exit 1; }
done

echo "== json =="
JSON="$("$BIN/cmstat" -fleet "$SPEC" -json)"
for want in '"Round":1' '"Verdict":"ok"' '"Name":"us"' '"Name":"eu"' '"Name":"asia"' '"Hists"' '"HotKeys"'; do
  grep -q "$want" <<<"$JSON" || { echo "json missing $want" >&2; exit 1; }
done
grep -q '"Stale":true' <<<"$JSON" && { echo "unexpected stale cell" >&2; exit 1; }

echo "== prom =="
PROM="$("$BIN/cmstat" -fleet "$SPEC" -prom)"
for want in "cliquemap_fleet_cells 3" 'cliquemap_fleet_cell_up{cell="asia"} 1' \
            "cliquemap_fleet_op_latency_ns" "cliquemap_fleet_slo_state"; do
  grep -q "$want" <<<"$PROM" || { echo "prom missing '$want'" >&2; exit 1; }
done

# Stale-marker path: kill one cell and re-scrape twice with -watch so the
# second round must carry the last good snapshot marked STALE.
kill %1
sleep 1
WATCH="$(timeout 30 "$BIN/cmstat" -fleet "$SPEC" -watch 1s 2>/dev/null | head -80 || true)"
grep -Eq "STALE as of|DOWN" <<<"$WATCH" || {
  echo "killed cell never surfaced as STALE/DOWN:" >&2
  echo "$WATCH" >&2
  exit 1
}

echo "fleet smoke OK"

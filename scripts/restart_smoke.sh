#!/usr/bin/env bash
# restart_smoke.sh — end-to-end smoke of durable warm restarts against a
# real process: run a cmcell under write-heavy load with -data, SIGKILL it
# mid-load (no shutdown path, the crash the journal exists for), restart
# it over the same data directory, and assert the corpus comes back warm —
# the startup banner reports recovered keys and cmstat renders the
# RECOVERY table with nonzero recovered counts. Exits non-zero on any
# missed expectation.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
DATA="$BIN/data"
trap 'kill -9 $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cmcell" ./cmd/cmcell
go build -o "$BIN/cmstat" ./cmd/cmstat

# Phase 1: a long write-heavy workload journaling to $DATA. Wait for the
# preload (500 acked keys) and a slice of the mutation stream, then kill
# -9 mid-load so the journal tail is whatever the crash left behind.
"$BIN/cmcell" -shards 3 -spares 0 -keys 500 -ops 2000000 -getfrac 0.5 \
  -probes 0 -data "$DATA" >"$BIN/phase1.log" 2>&1 &
PID=$!
for attempt in $(seq 1 60); do
  grep -q "preloaded 500 keys" "$BIN/phase1.log" && break
  kill -0 "$PID" 2>/dev/null || { echo "phase-1 cell died early:" >&2; cat "$BIN/phase1.log" >&2; exit 1; }
  [ "$attempt" -eq 60 ] && { echo "phase-1 preload never finished" >&2; cat "$BIN/phase1.log" >&2; exit 1; }
  sleep 1
done
sleep 1
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
echo "phase 1: preloaded and killed -9 mid-load"
[ -d "$DATA" ] || { echo "no data directory written" >&2; exit 1; }

# Phase 2: restart over the same lineage. The banner must report a warm
# recovery covering at least the full preloaded corpus (each of the 3
# replicas recovers its own copy, so the sum is >= 500).
"$BIN/cmcell" -shards 3 -spares 0 -keys 500 -ops 2000 -probes 0 \
  -data "$DATA" -listen 127.0.0.1:7074 >"$BIN/phase2.log" 2>&1 &
for attempt in $(seq 1 60); do
  grep -q "warm restart: recovered" "$BIN/phase2.log" && break
  [ "$attempt" -eq 60 ] && { echo "restart never reported warm recovery:" >&2; cat "$BIN/phase2.log" >&2; exit 1; }
  sleep 1
done
RECOVERED="$(sed -n 's/^warm restart: recovered \([0-9]*\) keys.*/\1/p' "$BIN/phase2.log")"
[ "$RECOVERED" -ge 500 ] || { echo "recovered only $RECOVERED keys (want >= 500)" >&2; cat "$BIN/phase2.log" >&2; exit 1; }
echo "phase 2: recovered $RECOVERED keys warm"

# The operational view must carry the durability plane: cmstat renders a
# RECOVERY table, and the per-shard stats report the recovered corpus.
for attempt in $(seq 1 30); do
  if OUT="$("$BIN/cmstat" -gateway 127.0.0.1:7074 2>/dev/null)"; then break; fi
  [ "$attempt" -eq 30 ] && { echo "cmstat never connected" >&2; exit 1; }
  sleep 1
done
echo "== cmstat =="
echo "$OUT"
grep -q "RECOVERY" <<<"$OUT" || { echo "cmstat missing RECOVERY table" >&2; exit 1; }
JSON="$("$BIN/cmstat" -gateway 127.0.0.1:7074 -json)"
grep -Eq '"RecoveredKeys":[1-9]' <<<"$JSON" || { echo "json stats report zero recovered keys" >&2; exit 1; }

echo "restart smoke OK"

package cliquemap

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"cliquemap/internal/core/client"
)

// The two stress tests below are distilled regressions for the mixed-quorum
// lost-write family: a mutation acked by a leg that is about to leave the
// cohort (a demoted maintenance source, a resize survivor past its journal
// drain) counts toward quorum, yet its copy is invisible to every future
// reader. Each failure mode they guard was first caught — only under
// -race, whose scheduler stretches the handoff windows — by the
// maintenance-storm chaos soak:
//
//   - an idle spare acking mutations from stale-config clients
//     (backend.handoffRejects' shardless clause);
//   - a mutation passing the seal check, stalling past the journal drain
//     and the deferred unseal, then publishing with Sealed=false
//     (backend.handoffStranded's response-time re-check);
//   - a pending-epoch quorum acking before read authority flipped
//     (client.mutateOnce's authority gate).
//
// handoffStress runs concurrent SET workers against a live cell while the
// control-plane churn in `churn` executes, then verifies with a fresh
// client that every acked write is readable at no less than its acked
// sequence number. On a violation it dumps per-backend residency of the
// lost key to make the next diagnosis cheap.
func handoffStress(t *testing.T, opt Options, churn func(t *testing.T, c *Cell)) {
	c := newCell(t, opt)
	cc := c.Internal()
	ctx := context.Background()

	const workers = 4
	const keys = 8

	pre := cc.NewClient(client.Options{Strategy: client.StrategySCAR})
	for w := 0; w < workers; w++ {
		for k := 0; k < keys; k++ {
			if err := pre.Set(ctx, []byte(fmt.Sprintf("hs-w%d-k%d", w, k)), []byte("s0")); err != nil {
				t.Fatal(err)
			}
		}
	}

	var stop atomic.Bool
	var mu sync.Mutex
	acked := make(map[string]int) // key -> highest acked seq

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := cc.NewClient(client.Options{Strategy: client.StrategySCAR, NoFallback: true, Retries: 8, Budget: client.NewRetryBudget(500, 1)})
			seq := 0
			for !stop.Load() {
				seq++
				k := fmt.Sprintf("hs-w%d-k%d", w, seq%keys)
				if err := cl.Set(ctx, []byte(k), []byte(fmt.Sprintf("s%d", seq))); err == nil {
					mu.Lock()
					acked[k] = seq
					mu.Unlock()
				}
			}
		}(w)
	}

	churn(t, c)

	stop.Store(true)
	wg.Wait()

	check := cc.NewClient(client.Options{Strategy: client.Strategy2xR})
	mu.Lock()
	defer mu.Unlock()
	for k, seq := range acked {
		v, ok, err := check.Get(ctx, []byte(k))
		if err != nil {
			t.Fatalf("check get %s: %v", k, err)
		}
		if !ok {
			t.Errorf("key %s: acked s%d but missing", k, seq)
		} else {
			var got int
			fmt.Sscanf(string(v), "s%d", &got)
			if got >= seq {
				continue
			}
			t.Errorf("key %s: acked s%d but read s%d (lost acked write)", k, seq, got)
		}
		cfg := cc.Store.Get()
		t.Logf("config ID=%d shards=%d addrs=%v", cfg.ID, cfg.Shards, cfg.ShardAddrs)
		for _, b := range cc.Nodes() {
			found := false
			for _, it := range b.Items(-1, cfg.Shards) {
				if string(it.Key) == k {
					t.Logf("  node %s shard=%d: %s ver=%+v tomb=%v", b.Addr(), b.Shard(), it.Value, it.Version, it.Tombstone)
					found = true
				}
			}
			if !found {
				t.Logf("  node %s shard=%d: ABSENT", b.Addr(), b.Shard())
			}
		}
	}
}

// TestMaintenanceHandoffUnderLoad cycles every shard through planned
// maintenance (migrate to spare, migrate back) under sustained writes.
func TestMaintenanceHandoffUnderLoad(t *testing.T) {
	handoffStress(t, Options{Shards: 3, Spares: 1, Mode: R32}, func(t *testing.T, c *Cell) {
		ctx := context.Background()
		for s := 0; s < 3; s++ {
			orig := c.Internal().Store.Get().AddrFor(s)
			if _, err := c.PlannedMaintenance(ctx, s); err != nil {
				t.Fatalf("planned maintenance shard %d: %v", s, err)
			}
			if err := c.CompleteMaintenance(ctx, s, orig); err != nil {
				t.Fatalf("complete maintenance shard %d: %v", s, err)
			}
		}
	})
}

// TestResizeHandoffUnderLoad grows, shrinks, and regrows the cell under
// sustained writes.
func TestResizeHandoffUnderLoad(t *testing.T) {
	handoffStress(t, Options{Shards: 3, Spares: 3, Mode: R32}, func(t *testing.T, c *Cell) {
		ctx := context.Background()
		for _, n := range []int{5, 3, 5} {
			if err := c.Resize(ctx, n); err != nil {
				t.Fatalf("resize to %d: %v", n, err)
			}
		}
	})
}

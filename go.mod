module cliquemap

go 1.22

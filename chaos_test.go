package cliquemap

// Jepsen-lite chaos soak: concurrent workers run a keyed workload while a
// seeded chaos schedule injects crashes, partitions, brownouts, bit
// corruption, and config staleness — then a per-key oracle checks the
// paper's end-to-end safety story (§3, §5.2, §5.4):
//
//   - no lost acked writes: an acknowledged SET is never superseded by
//     anything older, and an acknowledged ERASE never resurrects;
//   - monotone observation: the sequence number a reader observes for a
//     key never regresses (quorum + version ordering);
//   - no phantom values: every observed value was actually issued by the
//     key's single writer, and unparseable (corrupted) values never leak
//     past the checksum;
//   - convergence: after the fault window heals, repair quiesces and
//     every key reads back to a stable, oracle-legal state.
//
// Workers own disjoint key ranges so each key has one sequential writer,
// which keeps the oracle exact without a global linearizability search.
// Run under -race; CI pins the seeds so a failure replays byte-for-byte.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cliquemap/internal/core/client"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/truetime"
)

const (
	soakWorkers       = 4
	soakKeysPerWorker = 8
	soakQuorum        = 2 // R=3.2
)

func soakKey(w, k int) []byte { return []byte(fmt.Sprintf("soak-w%d-k%d", w, k)) }

func soakVal(w, k int, seq uint64) []byte {
	return []byte(fmt.Sprintf("w%d.k%d.s%d|chaos-soak-payload", w, k, seq))
}

func soakSeq(w, k int, val []byte) (uint64, bool) {
	var gw, gk int
	var seq uint64
	n, err := fmt.Sscanf(string(val), "w%d.k%d.s%d|", &gw, &gk, &seq)
	if err != nil || n != 3 || gw != w || gk != k {
		return 0, false
	}
	return seq, true
}

// soakKeyState is the oracle's view of one key. The key has a single
// sequential writer, so acked/indeterminate bookkeeping is exact:
// mutations that returned nil error are acked (must persist until
// superseded); mutations that errored are indeterminate (may or may not
// have applied, and may surface later).
type soakKeyState struct {
	ackedSeq      uint64          // seq of the newest acked mutation
	ackedIsSet    bool            // that mutation was a SET (false: ERASE)
	indetSets     map[uint64]bool // indeterminate SETs newer than ackedSeq
	indetEraseMax uint64          // newest indeterminate ERASE > ackedSeq
	lastObserved  uint64          // newest seq any read has returned
}

func newSoakKeyState() *soakKeyState {
	return &soakKeyState{indetSets: make(map[uint64]bool)}
}

func (st *soakKeyState) noteAcked(seq uint64, isSet bool) {
	st.ackedSeq, st.ackedIsSet = seq, isSet
	for s := range st.indetSets {
		if s <= seq {
			delete(st.indetSets, s)
		}
	}
	if st.indetEraseMax <= seq {
		st.indetEraseMax = 0
	}
}

func (st *soakKeyState) noteIndeterminate(seq uint64, isSet bool) {
	if isSet {
		st.indetSets[seq] = true
	} else if seq > st.indetEraseMax {
		st.indetEraseMax = seq
	}
}

// observe validates one read result against the oracle state.
func (st *soakKeyState) observe(w, k int, val []byte, hit bool) error {
	if !hit {
		maxErase := st.indetEraseMax
		if !st.ackedIsSet && st.ackedSeq > maxErase {
			maxErase = st.ackedSeq
		}
		if maxErase == 0 {
			return fmt.Errorf("w%d/k%d: miss with no erase issued (lost write, acked s%d)", w, k, st.ackedSeq)
		}
		if st.ackedIsSet && maxErase <= st.ackedSeq {
			return fmt.Errorf("w%d/k%d: miss but newest erase s%d predates acked set s%d (lost acked write)",
				w, k, maxErase, st.ackedSeq)
		}
		if maxErase <= st.lastObserved {
			return fmt.Errorf("w%d/k%d: miss but newest erase s%d predates observed s%d (observation regressed)",
				w, k, maxErase, st.lastObserved)
		}
		return nil
	}
	seq, ok := soakSeq(w, k, val)
	if !ok {
		return fmt.Errorf("w%d/k%d: unparseable value %q leaked past the checksum", w, k, val)
	}
	if seq < st.lastObserved {
		return fmt.Errorf("w%d/k%d: observed seq regressed s%d -> s%d", w, k, st.lastObserved, seq)
	}
	switch {
	case seq < st.ackedSeq:
		return fmt.Errorf("w%d/k%d: read s%d older than acked s%d (lost acked write)", w, k, seq, st.ackedSeq)
	case seq == st.ackedSeq:
		if !st.ackedIsSet {
			return fmt.Errorf("w%d/k%d: read s%d after acked erase s%d (resurrection)", w, k, seq, st.ackedSeq)
		}
	default: // seq > ackedSeq: must be a known indeterminate SET
		if !st.indetSets[seq] {
			return fmt.Errorf("w%d/k%d: phantom value s%d (never issued or superseded)", w, k, seq)
		}
	}
	st.lastObserved = seq
	return nil
}

// soakWorker drives one worker's keys until stop closes, validating every
// read inline. Errors are oracle violations; op failures during fault
// windows are recorded as indeterminate, never fatal.
func soakWorker(ctx context.Context, cl *client.Client, w int, stop <-chan struct{}, states []*soakKeyState, violations chan<- error) {
	seq := uint64(1) // seq 1 was the preload SET
	rnd := uint64(w)*0x9e3779b97f4a7c15 + 1
	nextRnd := func() uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	// lastVer tracks the version of each key's newest acked SET so CAS ops
	// can present a plausibly-current expectation.
	lastVer := make([]truetime.Version, soakKeysPerWorker)
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		k := i % soakKeysPerWorker
		st := states[k]
		seq++
		switch {
		case i%7 == 6:
			err := cl.Erase(ctx, soakKey(w, k))
			if err == nil {
				st.noteAcked(seq, false)
				lastVer[k] = truetime.Version{}
			} else {
				st.noteIndeterminate(seq, false)
			}
		case i%7 == 3 && !lastVer[k].Zero():
			// CAS against the newest acked SET's version. Applied = acked
			// write; a mismatch or error is indeterminate (replicas may
			// have partially applied before the op gave up).
			applied, err := cl.Cas(ctx, soakKey(w, k), soakVal(w, k, seq), lastVer[k])
			if err == nil && applied {
				st.noteAcked(seq, true)
			} else {
				st.noteIndeterminate(seq, true)
			}
			// The CAS nominated a fresh version either way; the old
			// expectation is spent.
			lastVer[k] = truetime.Version{}
		default:
			v, err := cl.SetVersioned(ctx, soakKey(w, k), soakVal(w, k, seq))
			if err == nil {
				st.noteAcked(seq, true)
				lastVer[k] = v
			} else {
				st.noteIndeterminate(seq, true)
			}
		}
		for r := 0; r < 2; r++ {
			rk := int(nextRnd() % soakKeysPerWorker)
			val, hit, err := cl.Get(ctx, soakKey(w, rk))
			if err != nil {
				continue // fault-window read failure: no observation
			}
			if verr := states[rk].observe(w, rk, val, hit); verr != nil {
				select {
				case violations <- verr:
				default:
				}
				return
			}
		}
	}
}

// runChaosSoak is the shared harness: build a cell, preload, run workers
// while stepping the preset's schedule, then heal, repair to quiescence,
// and verify the converged state.
func runChaosSoak(t *testing.T, preset string, seed uint64) {
	t.Helper()
	// Three spares: the maintenance-storm preset grows the cell by two
	// shards and still runs a maintenance handoff while grown, so the
	// storm needs +2 growth capacity plus one idle spare at all times.
	runChaosSoakCell(t, preset, seed, Options{Shards: 3, Spares: 3, Mode: R32})
}

func runChaosSoakCell(t *testing.T, preset string, seed uint64, copt Options) {
	t.Helper()
	c := newCell(t, copt)
	cc := c.Internal()
	ctx := context.Background()

	eng, err := c.ChaosEngine(preset, seed)
	if err != nil {
		t.Fatal(err)
	}

	clients := make([]*client.Client, soakWorkers)
	states := make([][]*soakKeyState, soakWorkers)
	for w := range clients {
		clients[w] = cc.NewClient(client.Options{
			Strategy:   client.StrategySCAR,
			NoFallback: true, // a single-replica fallback read could legally be stale; the oracle wants quorum reads only
			Retries:    8,
			Budget:     client.NewRetryBudget(500, 1),
		})
		states[w] = make([]*soakKeyState, soakKeysPerWorker)
		for k := range states[w] {
			states[w][k] = newSoakKeyState()
			// Preload (seq 1) before the fault window so every key has an
			// acked baseline the oracle can hold reads against.
			if err := clients[w].Set(ctx, soakKey(w, k), soakVal(w, k, 1)); err != nil {
				t.Fatalf("preload w%d/k%d: %v", w, k, err)
			}
			states[w][k].noteAcked(1, true)
		}
	}

	stop := make(chan struct{})
	violations := make(chan error, soakWorkers)
	var wg sync.WaitGroup
	for w := 0; w < soakWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			soakWorker(ctx, clients[w], w, stop, states[w], violations)
		}(w)
	}

	// Step the schedule through while the workers hammer the cell, so
	// every fire and heal lands under load.
	for !eng.Done() {
		if _, serr := eng.Step(ctx); serr != nil {
			t.Errorf("chaos step: %v", serr)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // post-heal load, catches lingering damage
	close(stop)
	wg.Wait()
	select {
	case verr := <-violations:
		t.Fatalf("oracle violation during %s soak (seed %d): %v", preset, seed, verr)
	default:
	}

	// Fault window over: force-heal anything outstanding, then repair
	// until quiescent — §5.4's permanent repair must converge.
	if err := eng.HealAll(ctx); err != nil {
		t.Fatalf("HealAll: %v", err)
	}
	quiesced := false
	for i := 0; i < 12; i++ {
		n, rerr := c.RepairAll(ctx)
		if rerr != nil {
			t.Fatalf("RepairAll: %v", rerr)
		}
		if n == 0 {
			quiesced = true
			break
		}
	}
	if !quiesced {
		t.Fatalf("repair did not quiesce within 12 sweeps after %s", preset)
	}

	// Converged-state verification with a fresh client: every key must
	// read cleanly, legally, and identically twice (stability).
	vcl := cc.NewClient(client.Options{Strategy: client.Strategy2xR, NoFallback: true})
	for w := 0; w < soakWorkers; w++ {
		for k := 0; k < soakKeysPerWorker; k++ {
			v1, hit1, err := vcl.Get(ctx, soakKey(w, k))
			if err != nil {
				t.Fatalf("post-heal read w%d/k%d: %v", w, k, err)
			}
			if verr := states[w][k].observe(w, k, v1, hit1); verr != nil {
				t.Errorf("post-heal oracle violation: %v", verr)
			}
			v2, hit2, err := vcl.Get(ctx, soakKey(w, k))
			if err != nil {
				t.Fatalf("post-heal re-read w%d/k%d: %v", w, k, err)
			}
			if hit1 != hit2 || !bytes.Equal(v1, v2) {
				t.Errorf("w%d/k%d unstable after repair: (%v,%q) then (%v,%q)", w, k, hit1, v1, hit2, v2)
			}
		}
	}

	// The oracle is only meaningful if nothing was evicted (an evicted
	// key legitimately reads as a miss) and chaos actually fired.
	for s := 0; s < 3; s++ {
		if b := cc.Backend(s); b != nil {
			cs := b.CountersSnapshot()
			if cs.CapacityEvictions+cs.AssocEvictions > 0 {
				t.Fatalf("shard %d evicted (%d cap, %d assoc): soak sizing invalidates the oracle",
					s, cs.CapacityEvictions, cs.AssocEvictions)
			}
		}
	}
	counters := eng.Counters()
	if len(counters) == 0 {
		t.Fatalf("%s soak fired no hazards", preset)
	}
	t.Logf("%s seed %d: hazards %v", preset, seed, counters)
}

func TestChaosSoakBrownout(t *testing.T)      { runChaosSoak(t, "brownout", 1) }
func TestChaosSoakPartitionHeal(t *testing.T) { runChaosSoak(t, "partition-heal", 1) }
func TestChaosSoakCorruption(t *testing.T)    { runChaosSoak(t, "corruption-soak", 1) }
func TestChaosSoakRollingCrash(t *testing.T)  { runChaosSoak(t, "rolling-crash", 1) }

// TestChaosSoakRollingCrashWarm is the rolling-crash soak with durable
// warm restarts: every crashed shard rejoins from its checkpoint+journal
// lineage (recovering state, miss-bounce, self-validation) instead of
// cold-empty. The same oracle must hold — in particular, a warm-restarted
// replica's recovered-but-stale residents must never surface past the
// quorum as resurrections or regressed observations.
func TestChaosSoakRollingCrashWarm(t *testing.T) {
	runChaosSoakCell(t, "rolling-crash-warm", 1, Options{Shards: 3, Spares: 3, Mode: R32, DataDir: t.TempDir()})
}

// TestRestartLostWriteRegressionCold is the distilled rolling-crash
// lost-write flake: a SET acked by exactly {0,1} (replica 2's leg forced
// to fail), then replica 0 crashes and restarts EMPTY. Pre-fix, a quorum
// GET could collect miss(0)+miss(2) — two "agreed miss" votes for a key
// the cell acknowledged — and return a clean miss. The recovering state
// must withhold replica 0's miss vote until repair completes.
func TestRestartLostWriteRegressionCold(t *testing.T) {
	testRestartLostWriteRegression(t, Options{Shards: 3, Mode: R32})
}

// TestRestartLostWriteRegressionWarm closes the same hole from the other
// side: with a data directory, the restarted acker recovers the key from
// its journal and serves it immediately — no repair needed for the read
// to hit.
func TestRestartLostWriteRegressionWarm(t *testing.T) {
	testRestartLostWriteRegression(t, Options{Shards: 3, Mode: R32, DataDir: t.TempDir()})
}

func testRestartLostWriteRegression(t *testing.T, copt Options) {
	c := newCell(t, copt)
	cc := c.Internal()
	ctx := context.Background()
	cl := cc.NewClient(client.Options{Strategy: client.StrategyRPC, NoFallback: true, Retries: 2})

	key, val := []byte("ghost"), []byte("acked-by-two")
	// Replica 2's mutation leg fails outright: the SET acks on {0,1} alone.
	cc.SetRPCFailRate(2, 1.0, 1)
	if err := cl.Set(ctx, key, val); err != nil {
		t.Fatalf("quorum-of-two set: %v", err)
	}
	cc.SetRPCFailRate(2, 0, 0)

	// Crash an acker and bring it back mid-recovery (RestartBegin swaps in
	// the new backend but does NOT repair yet — the window the flake lived
	// in). Every read in this window must refuse to agree-miss: a value, or
	// an error, never a clean miss.
	c.Crash(0)
	if _, err := cc.RestartBegin(0); err != nil {
		t.Fatal(err)
	}
	sawHit := false
	for i := 0; i < 20; i++ {
		got, hit, err := cl.Get(ctx, key)
		if err != nil {
			continue // quorum starved by the withheld vote: safe, retryable
		}
		if !hit {
			t.Fatal("lost acked write: quorum agreed miss while an acker was mid-restart")
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("get = %q, want %q", got, val)
		}
		sawHit = true
	}
	if copt.DataDir != "" {
		// Warm: the journal already restored the key on the restarted
		// replica, so reads must succeed before any repair runs...
		if !sawHit {
			t.Fatal("warm-restarted acker never served its journaled write")
		}
		if rec := cc.Backend(0).RecoveryStatsSnapshot(); rec.RecoveredKeys == 0 {
			t.Fatal("warm restart recovered zero keys")
		}
	}

	// ...and after self-validation completes, reads hit unconditionally in
	// both variants.
	if err := cc.RestartComplete(ctx, 0); err != nil {
		t.Fatal(err)
	}
	got, hit, err := cl.Get(ctx, key)
	if err != nil || !hit || !bytes.Equal(got, val) {
		t.Fatalf("post-repair get: %q hit=%v err=%v", got, hit, err)
	}
	if cc.Backend(0).Recovering() {
		t.Fatal("recovering guard still up after RestartComplete")
	}
}

// TestRestartLostWriteUnderContention re-runs the distilled lost-write
// repro with the load profile the original flake needed: the pinned
// quorum-of-two SET goes through the crash/RestartBegin window while
// concurrent writers hammer unrelated keys (journal, stripe-lock, and
// repair contention) and concurrent readers race the ghost key. The
// historical failure mode — PR 6's baseline lost the acked write ~3/30
// only under parallel load, because an empty cold-restarted acker's miss
// vote could complete a false miss quorum exactly when scheduling delays
// let a GET land mid-restart — was fixed by the §5.4 recovering state
// (PR 8: misses withheld until self-validation). This pins the fix at
// the contention point, not just the single-threaded distillation.
func TestRestartLostWriteUnderContention(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Mode: R32})
	cc := c.Internal()
	ctx := context.Background()
	cl := cc.NewClient(client.Options{Strategy: client.StrategyRPC, NoFallback: true, Retries: 2})

	key, val := []byte("ghost-contended"), []byte("acked-by-two")
	cc.SetRPCFailRate(2, 1.0, 1)
	if err := cl.Set(ctx, key, val); err != nil {
		t.Fatalf("quorum-of-two set: %v", err)
	}
	cc.SetRPCFailRate(2, 0, 0)

	c.Crash(0)
	if _, err := cc.RestartBegin(0); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	// Contention writers: disjoint keys, full mutation pressure on every
	// backend (including the recovering one) for the whole window.
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			wcl := cc.NewClient(client.Options{Strategy: client.StrategyRPC, Retries: 2})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("contender-w%d-k%d", w, i%8))
				wcl.Set(ctx, k, []byte(fmt.Sprintf("w%d.s%d", w, i)))
			}
		}(w)
	}
	// Racing readers on the ghost key: every answered read in the window
	// must be the acked value — an agreed miss is the lost write.
	errCh := make(chan string, 8)
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			rcl := cc.NewClient(client.Options{Strategy: client.StrategyRPC, NoFallback: true, Retries: 2})
			for i := 0; i < 30; i++ {
				got, hit, err := rcl.Get(ctx, key)
				if err != nil {
					continue // quorum starved by the withheld vote: safe
				}
				if !hit {
					errCh <- "lost acked write: agreed miss during contended mid-restart window"
					return
				}
				if !bytes.Equal(got, val) {
					errCh <- fmt.Sprintf("ghost read %q, want %q", got, val)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
	if err := cc.RestartComplete(ctx, 0); err != nil {
		t.Fatal(err)
	}
	got, hit, err := cl.Get(ctx, key)
	if err != nil || !hit || !bytes.Equal(got, val) {
		t.Fatalf("post-repair get: %q hit=%v err=%v", got, hit, err)
	}
}

// TestChaosSoakMaintenanceStorm runs the full SET/ERASE/CAS-adjacent
// workload through repeated planned-maintenance cycles and an online
// grow-then-shrink — every seal/drain/flip window the control plane can
// open — holding the same oracle: no lost acked writes, no resurrection,
// monotone observations, convergence after the storm.
func TestChaosSoakMaintenanceStorm(t *testing.T) { runChaosSoak(t, "maintenance-storm", 1) }

// TestRetryBudgetExhaustion: when every retry fails, the token-bucket
// budget must cut the op off promptly with ErrExhausted — not let it
// grind through a deep retry schedule — and must not tax the first
// attempt of later ops once the fault heals.
func TestRetryBudgetExhaustion(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Mode: R32})
	cc := c.Internal()
	ctx := context.Background()
	budget := client.NewRetryBudget(2, 0.001)
	cl := cc.NewClient(client.Options{
		Strategy:   client.StrategySCAR,
		NoFallback: true,
		Retries:    100, // the budget, not the retry cap, must bind
		Budget:     budget,
	})
	key := []byte("budget-key")
	if err := cl.Set(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	plane := cc.Chaos()
	for s := 0; s < 3; s++ {
		plane.RPCFailRate(s, 1.0)
	}
	start := time.Now()
	err := cl.Set(ctx, key, []byte("v2"))
	if !errors.Is(err, client.ErrExhausted) {
		t.Fatalf("Set under total failure: got %v, want ErrExhausted", err)
	}
	if got := cl.M.BudgetDenied.Value(); got == 0 {
		t.Fatal("budget exhaustion not counted in BudgetDenied")
	}
	// Capacity 2 → at most 2 billed retries before the cutoff; with 100
	// configured retries, only the budget explains a prompt return.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("exhausted op took %v: budget did not cut off retries", elapsed)
	}
	// Bucket is empty now: the next failing op is denied on its first
	// retry, immediately.
	if err := cl.Set(ctx, key, []byte("v3")); !errors.Is(err, client.ErrExhausted) {
		t.Fatalf("second Set: got %v, want prompt ErrExhausted", err)
	}

	// Heal: first attempts are free, so an empty bucket must not block
	// healthy traffic, and successes re-credit it.
	for s := 0; s < 3; s++ {
		plane.RPCFailRate(s, 0)
	}
	if err := cl.Set(ctx, key, []byte("v4")); err != nil {
		t.Fatalf("post-heal Set with empty budget: %v", err)
	}
	if v, ok, err := cl.Get(ctx, key); err != nil || !ok || string(v) != "v4" {
		t.Fatalf("post-heal Get: %q %v %v", v, ok, err)
	}
}

// TestBrownoutAmplificationBounded: under a 30% transient RPC failure
// rate, the quorum write path with budgeted backoff must keep total RPC
// attempts under 2× the offered legs — the retry-storm bound the paper's
// §9 outages motivate — and goodput must snap back once the fault heals.
func TestBrownoutAmplificationBounded(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Mode: R32})
	cc := c.Internal()
	ctx := context.Background()
	cl := cc.NewClient(client.Options{
		Strategy:   client.StrategySCAR,
		NoFallback: true,
		Budget:     client.NewRetryBudget(10_000, 1), // roomy: measure structural amplification, not budget cutoff
	})
	const keys = 16
	for i := 0; i < keys; i++ {
		if err := cl.Set(ctx, soakKey(9, i), []byte("warm")); err != nil {
			t.Fatal(err)
		}
	}

	plane := cc.Chaos()
	for s := 0; s < 3; s++ {
		plane.RPCFailRate(s, 0.3)
	}
	const ops = 300
	base := cc.Net.Calls()
	failed := 0
	for i := 0; i < ops; i++ {
		if err := cl.Set(ctx, soakKey(9, i%keys), soakVal(9, i%keys, uint64(i+2))); err != nil {
			failed++
		}
	}
	attempts := cc.Net.Calls() - base
	offered := uint64(ops * 3) // one leg per replica per op
	if attempts >= 2*offered {
		t.Fatalf("brownout amplification: %d RPC attempts for %d offered legs (>= 2x)", attempts, offered)
	}
	// 30% per-leg failure with a 2-of-3 quorum rarely exhausts 5 retries;
	// the brownout should degrade, not collapse, goodput.
	if failed > ops/10 {
		t.Errorf("%d/%d ops failed under 30%% brownout (expected mostly-successful quorums)", failed, ops)
	}
	t.Logf("brownout: %d attempts / %d offered legs (%.2fx), %d failed ops",
		attempts, offered, float64(attempts)/float64(offered), failed)

	// Heal and verify recovery: every op succeeds and amplification
	// returns to ~1 (a handful of calls of slack for config refresh).
	for s := 0; s < 3; s++ {
		plane.RPCFailRate(s, 0)
	}
	base = cc.Net.Calls()
	const healedOps = 100
	for i := 0; i < healedOps; i++ {
		if err := cl.Set(ctx, soakKey(9, i%keys), []byte("healed")); err != nil {
			t.Fatalf("post-heal Set %d: %v", i, err)
		}
	}
	healedAttempts := cc.Net.Calls() - base
	if healedAttempts > healedOps*3+10 {
		t.Errorf("goodput did not recover: %d attempts for %d ops post-heal", healedAttempts, healedOps)
	}
}

// TestCorruptionCaughtByChecksum: flip one bit in live entries on one
// backend, then prove the §3 self-validating checksum catches EXACTLY the
// injected flips — a direct per-replica probe of the victim finds every
// damaged entry rejected and every untouched entry served — and that the
// quorum client absorbs each detection as a clean failover: the pristine
// value always comes back, every torn read pairs with a failover, and a
// rejected entry never surfaces as a miss. Overwriting cures the damage.
func TestCorruptionCaughtByChecksum(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Mode: R32})
	cc := c.Internal()
	ctx := context.Background()
	cl := cc.NewClient(client.Options{
		Strategy:   client.Strategy2xR,
		NoFallback: true,
		NoHedge:    true,
	})
	const keys = 64
	want := make(map[string][]byte, keys)
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("corr-%d", i))
		v := []byte(fmt.Sprintf("pristine-value-%d", i))
		if err := cl.Set(ctx, k, v); err != nil {
			t.Fatal(err)
		}
		want[string(k)] = v
	}

	const victim = 1
	damaged := map[string]bool{}
	for _, k := range cc.Chaos().CorruptSeeded(victim, keys, 7) {
		damaged[string(k)] = true
	}
	if len(damaged) == 0 {
		t.Fatal("corruption injected nothing")
	}

	// Per-replica witness: the victim replicates every key (3-shard
	// cohort), and its local GET decodes through the checksum. Damaged
	// entries must be rejected (not found), untouched ones served intact
	// — detection is exact, not probabilistic.
	victimAddr := cc.Store.Get().AddrFor(victim)
	probe := cc.Net.Client(cc.Fabric.NumHosts()-1, "corruption-probe")
	probeShard := func(wantClean map[string]bool) {
		t.Helper()
		for k := range want {
			resp, _, err := probe.Call(ctx, victimAddr, proto.MethodGet, proto.GetReq{Key: []byte(k)}.Marshal())
			if err != nil {
				t.Fatalf("probe %q: %v", k, err)
			}
			g, err := proto.UnmarshalGetResp(resp)
			if err != nil {
				t.Fatalf("probe %q: %v", k, err)
			}
			if wantClean[k] != g.Found {
				t.Errorf("victim replica %q: found=%v, want %v (checksum mis-detected the flip)", k, g.Found, wantClean[k])
			}
			if g.Found && !bytes.Equal(g.Value, want[k]) {
				t.Errorf("victim replica served wrong bytes for %q: %q", k, g.Value)
			}
		}
	}
	clean := map[string]bool{}
	for k := range want {
		clean[k] = !damaged[k]
	}
	probeShard(clean)

	// Client-side: whichever replica the quorum read picks first, a
	// damaged copy is only ever absorbed — right value, torn paired with
	// failover, never a miss. Several rounds so the latency-ordered
	// replica choice exercises the victim plenty.
	torn0, fail0, miss0 := cl.M.TornRetries.Value(), cl.M.Failovers.Value(), cl.M.Misses.Value()
	for round := 0; round < 10; round++ {
		for k, v := range want {
			got, ok, err := cl.Get(ctx, []byte(k))
			if err != nil || !ok {
				t.Fatalf("round %d get %q: %v %v", round, k, ok, err)
			}
			if !bytes.Equal(got, v) {
				t.Fatalf("corrupted value leaked for %q: got %q want %q", k, got, v)
			}
		}
	}
	torn := cl.M.TornRetries.Value() - torn0
	fails := cl.M.Failovers.Value() - fail0
	if torn == 0 {
		t.Errorf("no read ever hit the %d damaged entries in 10 rounds", len(damaged))
	}
	if torn != fails {
		t.Errorf("accounting drift: torn=%d failovers=%d (every detection must be absorbed by exactly one failover)", torn, fails)
	}
	if d := cl.M.Misses.Value() - miss0; d != 0 {
		t.Errorf("%d misses during corruption reads (rejection must fail over, not miss)", d)
	}
	t.Logf("corruption: %d/%d entries damaged, torn=%d failovers=%d over 10 rounds", len(damaged), keys, torn, fails)

	// Overwrite cures: fresh SETs replace the damaged bytes, the victim
	// serves everything again, and reads stop tearing.
	for k := range damaged {
		want[k] = append([]byte("cured-"), k...)
		if err := cl.Set(ctx, []byte(k), want[k]); err != nil {
			t.Fatalf("curing set %q: %v", k, err)
		}
	}
	for k := range clean {
		clean[k] = true
	}
	probeShard(clean)
	tornBefore := cl.M.TornRetries.Value()
	for k, v := range want {
		got, ok, err := cl.Get(ctx, []byte(k))
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("post-cure get %q: %q %v %v", k, got, ok, err)
		}
	}
	if d := cl.M.TornRetries.Value() - tornBefore; d != 0 {
		t.Errorf("%d torn reads after overwrite cure (corruption should be gone)", d)
	}
}

// TestEvictedTombstoneResurrection is the distilled §5.2 residual: a key
// erased with quorum {0,1} (replica 2's leg forced to fail) whose
// tombstone is then churned out of the ackers' exact caches by unrelated
// erases. Before the pending-settle queue, the evicted tombstone
// collapsed straight into the coarse summary — invisible to repair, which
// stayed dominated-neutral while replica 2 kept the stale value — and two
// cold restarts of the ackers later, repair settled that stale value back
// onto the cohort: a resurrection of an acked erase. The pending queue
// keeps the evicted tombstone enumerable, so the repair sweep folds the
// erase back into cohort scans and re-erases replica 2 first.
func TestEvictedTombstoneResurrection(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Mode: R32, TombstoneCap: 2})
	cc := c.Internal()
	ctx := context.Background()
	cl := cc.NewClient(client.Options{Strategy: client.StrategyRPC, NoFallback: true, Retries: 2})

	key := []byte("lazarus")
	if err := cl.Set(ctx, key, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	// Replica 2's mutation leg fails outright: the ERASE acks on {0,1}.
	cc.SetRPCFailRate(2, 1.0, 1)
	if err := cl.Erase(ctx, key); err != nil {
		t.Fatalf("quorum-of-two erase: %v", err)
	}
	cc.SetRPCFailRate(2, 0, 0)

	// Churn unrelated erases through the cohort until the key's tombstone
	// is evicted from the ackers' exact caches (cap 2) — but not so many
	// that it also overflows the pending-settle queue.
	for i := 0; i < 3; i++ {
		fk := []byte(fmt.Sprintf("filler-%d", i))
		if err := cl.Set(ctx, fk, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := cl.Erase(ctx, fk); err != nil {
			t.Fatal(err)
		}
	}

	// The repair sweep that must fold the evicted-but-pending tombstone
	// back into cohort scans and complete the erase on replica 2.
	if _, err := cc.RepairAll(ctx); err != nil {
		t.Fatal(err)
	}

	// Cold-restart both ackers in turn: their tombstone caches AND coarse
	// summaries are wiped. Pre-fix, after the second restart the only
	// surviving view of the key was replica 2's stale value, and repair
	// settled it back cohort-wide.
	for _, s := range []int{0, 1} {
		c.Crash(s)
		if err := cc.Restart(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cc.RepairAll(ctx); err != nil {
		t.Fatal(err)
	}

	if got, hit, err := cl.Get(ctx, key); err != nil || hit {
		t.Fatalf("acked erase resurrected: got %q hit=%v err=%v", got, hit, err)
	}
}

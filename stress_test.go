package cliquemap

// Concurrency stress test for the striped backend: many writers issue
// SET/ERASE/CAS over a small overlapping key space against one R=3.2
// cohort while readers run, all under the race detector. It asserts the
// two invariants the stripe refactor must preserve:
//
//   - monotone versions: a replica never serves a key at a version lower
//     than one it served before (version bounds only grow, §5.2);
//   - no lost updates: after the storm settles, every key's surviving
//     version is at least the newest mutation that reached a write quorum,
//     and whatever version survives is one that was actually issued, with
//     its exact payload.
//
// Run with `go test -race -run ConcurrentMutationStress`.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cliquemap/internal/core/client"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/truetime"
)

const (
	stressWriters      = 4
	stressQuorumReader = 2
	stressKeys         = 12
	stressOpsPerWriter = 250
	stressQuorum       = 2 // R=3.2: replication 3, quorum 2
)

type stressMut struct {
	kind    byte // 's', 'c', 'e'
	v       truetime.Version
	payload string
	applied int // replicas that reported Applied
}

func stressKey(i int) []byte { return []byte(fmt.Sprintf("stress-%d", i)) }

func TestConcurrentMutationStress(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Mode: R32})
	cc := c.Internal()
	ctx := context.Background()
	cfg := cc.Store.Get()
	addrs := make([]string, 3)
	for i := range addrs {
		addrs[i] = cfg.AddrFor(i)
	}
	clientHost := cc.Fabric.NumHosts() - 1

	var recMu sync.Mutex
	recs := make(map[string][]stressMut)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Per-replica readers: found versions for a key must never regress.
	readerErrs := make(chan error, stressQuorumReader+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rpcc := cc.Net.Client(clientHost, "stress-reader")
		last := make(map[string]truetime.Version, 3*stressKeys)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := stressKey(i % stressKeys)
			for r, addr := range addrs {
				resp, _, err := rpcc.Call(ctx, addr, proto.MethodGet, proto.GetReq{Key: key}.Marshal())
				if err != nil {
					continue
				}
				gr, gerr := proto.UnmarshalGetResp(resp)
				if gerr != nil || !gr.Found {
					continue
				}
				id := fmt.Sprintf("%d/%s", r, key)
				if gr.Version.Less(last[id]) {
					readerErrs <- fmt.Errorf("replica %d key %s: version regressed %v -> %v", r, key, last[id], gr.Version)
					return
				}
				last[id] = gr.Version
			}
		}
	}()

	// Quorum-GET readers exercise the client's RMA read path (including
	// torn-read detection and retry) against live mutation.
	for qr := 0; qr < stressQuorumReader; qr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				val, found, err := cl.Get(ctx, stressKey((i+id)%stressKeys))
				if errors.Is(err, client.ErrExhausted) {
					// Retry-budget exhaustion is the client's intended
					// fail-fast under overload, not a consistency violation —
					// and this storm of tight-loop quorum reads against 12
					// keys under live mutation can legitimately trip it when
					// the box is slow (e.g. under the race detector). Back
					// off and keep hammering; the oracles below still catch
					// any real lost update or regression.
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					readerErrs <- fmt.Errorf("quorum get: %v", err)
					return
				}
				if found && (len(val) == 0 || val[0] != 'w') {
					readerErrs <- fmt.Errorf("quorum get returned foreign value %q", val)
					return
				}
			}
		}(qr)
	}

	// Writers: versioned mutations to the full cohort, overlapping keys.
	var writerWg sync.WaitGroup
	for w := 0; w < stressWriters; w++ {
		writerWg.Add(1)
		go func(id int) {
			defer writerWg.Done()
			gen := truetime.NewGenerator(cc.Clock, uint64(7000+id))
			rpcc := cc.Net.Client(clientHost, fmt.Sprintf("stress-writer-%d", id))
			rng := rand.New(rand.NewSource(int64(id)))
			lastApplied := make(map[string]truetime.Version, stressKeys)

			send := func(method string, req []byte) (acked, applied int) {
				for _, addr := range addrs {
					resp, _, err := rpcc.Call(ctx, addr, method, req)
					if err != nil {
						continue
					}
					mr, merr := proto.UnmarshalMutateResp(resp)
					if merr != nil {
						continue
					}
					acked++
					if mr.Applied {
						applied++
					}
				}
				return acked, applied
			}

			for i := 0; i < stressOpsPerWriter; i++ {
				key := stressKey(rng.Intn(stressKeys))
				v := gen.Next()
				m := stressMut{v: v}
				var acked int
				switch op := rng.Intn(10); {
				case op < 6:
					m.kind = 's'
					m.payload = fmt.Sprintf("w%d-%d", id, i)
					req := proto.SetReq{Key: key, Value: []byte(m.payload), Version: v}.Marshal()
					acked, m.applied = send(proto.MethodSet, req)
				case op < 8 && !lastApplied[string(key)].Zero():
					m.kind = 'c'
					m.payload = fmt.Sprintf("w%d-%d", id, i)
					req := proto.CasReq{Key: key, Value: []byte(m.payload), Expected: lastApplied[string(key)], Version: v}.Marshal()
					acked, m.applied = send(proto.MethodCas, req)
				default:
					m.kind = 'e'
					req := proto.EraseReq{Key: key, Version: v}.Marshal()
					acked, m.applied = send(proto.MethodErase, req)
				}
				if acked != len(addrs) {
					readerErrs <- fmt.Errorf("writer %d: only %d/%d replicas acked", id, acked, len(addrs))
					return
				}
				if m.applied >= stressQuorum && m.kind != 'e' {
					lastApplied[string(key)] = v
				}
				recMu.Lock()
				recs[string(key)] = append(recs[string(key)], m)
				recMu.Unlock()
			}
		}(w)
	}

	writerWg.Wait()
	close(stop)
	wg.Wait()
	select {
	case err := <-readerErrs:
		t.Fatal(err)
	default:
	}

	// Converge: quorum repair propagates any minority-applied winners.
	if _, err := c.RepairAll(ctx); err != nil {
		t.Fatalf("repair: %v", err)
	}

	// No lost updates: per key, reconcile the final state against the
	// mutation record.
	rpcc := cc.Net.Client(clientHost, "stress-verify")
	for k := 0; k < stressKeys; k++ {
		key := stressKey(k)
		muts := recs[string(key)]
		byVersion := make(map[truetime.Version]stressMut, len(muts))
		var vSet, vErase truetime.Version // newest quorum-applied mutation per kind
		for _, m := range muts {
			byVersion[m.v] = m
			if m.applied < stressQuorum {
				continue
			}
			if m.kind == 'e' {
				if vErase.Less(m.v) {
					vErase = m.v
				}
			} else if vSet.Less(m.v) {
				vSet = m.v
			}
		}

		// best = newest found version across replicas.
		var best truetime.Version
		var bestVal []byte
		found := false
		for _, addr := range addrs {
			resp, _, err := rpcc.Call(ctx, addr, proto.MethodGet, proto.GetReq{Key: key}.Marshal())
			if err != nil {
				t.Fatalf("verify get: %v", err)
			}
			gr, gerr := proto.UnmarshalGetResp(resp)
			if gerr != nil {
				t.Fatalf("verify decode: %v", gerr)
			}
			if gr.Found && (best.Less(gr.Version) || !found) {
				best, bestVal, found = gr.Version, append([]byte(nil), gr.Value...), true
			}
		}

		if found {
			m, issued := byVersion[best]
			if !issued {
				t.Fatalf("key %s: surviving version %v was never issued", key, best)
			}
			if m.kind == 'e' {
				t.Fatalf("key %s: surviving version %v belongs to an erase", key, best)
			}
			if string(bestVal) != m.payload {
				t.Fatalf("key %s: payload %q does not match mutation %v (%q)", key, bestVal, best, m.payload)
			}
		}
		if vErase.Less(vSet) {
			// Newest quorum-applied mutation stored a value: it (or
			// something newer) must have survived.
			if !found || best.Less(vSet) {
				t.Fatalf("key %s: lost update — quorum-applied set %v, surviving %v (found=%v)", key, vSet, best, found)
			}
		} else if !vErase.Zero() && vSet.Less(vErase) {
			// Newest quorum-applied mutation erased: only something even
			// newer (a minority-applied CAS promoted by repair) may survive.
			if found && best.Less(vErase) {
				t.Fatalf("key %s: erased at %v but older version %v survived", key, vErase, best)
			}
		}
	}
}

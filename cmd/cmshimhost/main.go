// Command cmshimhost is the shim subprocess (§6.2): it embeds the primary
// CliqueMap client (here backed by a self-contained cell) and serves the
// shim frame protocol on stdin/stdout. Language shims launch this binary
// and speak frames over the pipe pair, exactly as the production Java/Go/
// Python shims launch the C++ client subprocess.
//
// Usage (normally launched by shim.Launch, not by hand):
//
//	cmshimhost -shards 3 -mode r32
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"cliquemap"
	"cliquemap/internal/shim"
)

// cellStore adapts the public client to the shim Store interface.
type cellStore struct{ cl *cliquemap.Client }

func (s cellStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return s.cl.Get(ctx, key)
}
func (s cellStore) Set(ctx context.Context, key, value []byte) error {
	return s.cl.Set(ctx, key, value)
}
func (s cellStore) Erase(ctx context.Context, key []byte) error { return s.cl.Erase(ctx, key) }

func main() {
	shards := flag.Int("shards", 3, "backend count for the embedded cell")
	mode := flag.String("mode", "r32", "replication mode: r1, r2, r32")
	flag.Parse()

	var m cliquemap.Mode
	switch *mode {
	case "r1":
		m = cliquemap.R1
	case "r2":
		m = cliquemap.R2Immutable
	case "r32":
		m = cliquemap.R32
	default:
		fmt.Fprintf(os.Stderr, "cmshimhost: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cell, err := cliquemap.NewCell(cliquemap.Options{Shards: *shards, Mode: m})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmshimhost: %v\n", err)
		os.Exit(1)
	}
	cl := cell.NewClient(cliquemap.ClientOptions{Strategy: cliquemap.LookupSCAR})

	if err := shim.Serve(context.Background(), os.Stdin, os.Stdout, cellStore{cl: cl}); err != nil {
		fmt.Fprintf(os.Stderr, "cmshimhost: serve: %v\n", err)
		os.Exit(1)
	}
}

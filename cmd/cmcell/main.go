// Command cmcell runs a CliqueMap cell under synthetic load and reports
// client- and backend-side statistics — a quick operational smoke test of
// the whole stack.
//
// Telemetry flags:
//
//	-listen addr   serve the cell's RPC surface on a TCP socket, so
//	               cmstat (and any rpc.DialTCP caller) can inspect it
//	-http addr     serve HTTP observability: GET /metrics returns
//	               Prometheus text exposition of the cell's op-tracing
//	               plane (latency quantiles per kind/transport, slow-op
//	               counters, CPU accounts), the health plane's SLO
//	               burn-rate and alert-state gauges, and the per-task
//	               saturation plane (worker-pool occupancy, admission ρ,
//	               stripe-lock contention, NIC engine queueing);
//	               /debug/pprof/* exposes the standard Go profiling
//	               endpoints
//	-probes n      spread n E2E prober rounds across the run (default
//	               50; 0 disables). Each round sweeps every transport
//	               strategy with the full GET/SET/CAS/ERASE canary mix
//	               and re-evaluates the SLO alert state machine.
//
// When either is set, cmcell keeps serving after the workload finishes
// until interrupted.
//
// Usage:
//
//	cmcell -shards 5 -spares 1 -mode r32 -strategy scar \
//	       -keys 2000 -ops 20000 -getfrac 0.95 -valsize 1024 \
//	       -maintain -crash -resize 7 -listen 127.0.0.1:7070 -http 127.0.0.1:7071
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"time"

	"cliquemap"
	"cliquemap/internal/chaos"
	"cliquemap/internal/health"
	"cliquemap/internal/workload"
)

func main() {
	shards := flag.Int("shards", 3, "backend count")
	spares := flag.Int("spares", 1, "warm spare count")
	mode := flag.String("mode", "r32", "replication: r1, r2, r32")
	strategy := flag.String("strategy", "scar", "lookup: 2xr, scar, msg, rpc")
	transport := flag.String("transport", "pony", "rma transport: pony, 1rma")
	keys := flag.Int("keys", 1000, "corpus size")
	ops := flag.Int("ops", 10000, "operations to run")
	getFrac := flag.Float64("getfrac", 0.95, "GET fraction of the mix")
	valSize := flag.Int("valsize", 1024, "value size in bytes")
	zipf := flag.Float64("zipf", 1.1, "key popularity skew (<=1 for uniform)")
	evict := flag.String("evict", "lru", "eviction policy: lru, arc, clock, slfu")
	maintain := flag.Bool("maintain", false, "inject a planned maintenance mid-run")
	crash := flag.Bool("crash", false, "inject a crash + restart mid-run")
	resizeTo := flag.Int("resize", 0, "resize the cell to this shard count at 1/4 of the run and back at 3/4 (0 disables; needs enough spares to grow)")
	chaosPreset := flag.String("chaos", "", "run a chaos schedule during the workload: brownout, partition-heal, corruption-soak, rolling-crash, maintenance-storm")
	chaosSeed := flag.Uint64("chaosseed", 1, "chaos schedule seed (same seed = same schedule)")
	dataDir := flag.String("data", "", "durable warm-restart directory: journal + checkpoint each task's corpus here and recover it on startup")
	listen := flag.String("listen", "", "also serve the RPC surface on this TCP address (e.g. 127.0.0.1:7070)")
	httpAddr := flag.String("http", "", "serve /metrics (Prometheus text) and /debug/pprof on this address")
	probeRounds := flag.Int("probes", 50, "E2E prober rounds spread across the run (0 disables)")
	flag.Parse()

	opt := cliquemap.Options{Shards: *shards, Spares: *spares, Eviction: *evict, DataDir: *dataDir}
	switch *mode {
	case "r1":
		opt.Mode = cliquemap.R1
	case "r2":
		opt.Mode = cliquemap.R2Immutable
	case "r32":
		opt.Mode = cliquemap.R32
	default:
		fatal("unknown mode %q", *mode)
	}
	switch *transport {
	case "pony":
		opt.Transport = cliquemap.PonyExpress
	case "1rma":
		opt.Transport = cliquemap.OneRMA
	default:
		fatal("unknown transport %q", *transport)
	}

	var strat cliquemap.Strategy
	switch *strategy {
	case "2xr":
		strat = cliquemap.Lookup2xR
	case "scar":
		strat = cliquemap.LookupSCAR
	case "msg":
		strat = cliquemap.LookupMSG
	case "rpc":
		strat = cliquemap.LookupRPC
	default:
		fatal("unknown strategy %q", *strategy)
	}

	cell, err := cliquemap.NewCell(opt)
	if err != nil {
		fatal("building cell: %v", err)
	}
	cl := cell.NewClient(cliquemap.ClientOptions{Strategy: strat, TouchBatch: 64})
	ctx := context.Background()

	fmt.Printf("cmcell: %d shards + %d spares, %s, %s lookups over %s\n",
		*shards, *spares, *mode, *strategy, *transport)
	if *dataDir != "" {
		if n := cell.RecoveredKeys(); n > 0 {
			fmt.Printf("warm restart: recovered %d keys from %s\n", n, *dataDir)
		} else {
			fmt.Printf("durable restarts enabled: journaling to %s (nothing to recover)\n", *dataDir)
		}
	}

	if *listen != "" {
		gw, gerr := cell.ServeTCP(*listen)
		if gerr != nil {
			fatal("tcp gateway: %v", gerr)
		}
		defer gw.Close()
		fmt.Printf("RPC surface on tcp://%s (rpc.DialTCP + proto schemas)\n", *listen)
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			cell.Tracer().WriteProm(w, cell.Internal().Acct)
			cell.Health().WriteProm(w)
			cell.Internal().WriteSaturationProm(w)
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if herr := http.ListenAndServe(*httpAddr, mux); herr != nil {
				fmt.Fprintf(os.Stderr, "cmcell: http: %v\n", herr)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics, profiles on /debug/pprof\n", *httpAddr)
	}

	// Preload.
	start := time.Now()
	for i := 0; i < *keys; i++ {
		if err := cl.Set(ctx, []byte(workload.Key(uint64(i))), workload.ValueGen(uint64(i), *valSize)); err != nil {
			fatal("preload: %v", err)
		}
	}
	fmt.Printf("preloaded %d keys (%dB values) in %v\n", *keys, *valSize, time.Since(start).Round(time.Millisecond))

	var kg workload.KeyGen
	if *zipf > 1 {
		kg = workload.NewZipfKeys(uint64(*keys), *zipf, 1)
	} else {
		kg = workload.NewUniformKeys(uint64(*keys), 1)
	}
	mix := workload.NewMix(*getFrac, 2)

	// Chaos schedule: step the engine at evenly-spaced points in the run
	// so every event (and its heal) lands inside the workload window.
	var eng *chaos.Engine
	chaosEvery := 0
	if *chaosPreset != "" {
		eng, err = cell.ChaosEngine(*chaosPreset, *chaosSeed)
		if err != nil {
			fatal("chaos: %v", err)
		}
		chaosEvery = *ops / (eng.Steps() + 1)
		if chaosEvery == 0 {
			chaosEvery = 1
		}
		fmt.Printf("chaos: preset %q seed %d, %d steps (every %d ops)\n",
			*chaosPreset, *chaosSeed, eng.Steps(), chaosEvery)
	}

	// E2E probers: canary rounds interleave with the workload so the
	// health plane sees the cell exactly as chaos leaves it.
	var prober *health.Prober
	probeEvery := 0
	if *probeRounds > 0 {
		prober = cell.Prober()
		probeEvery = *ops / *probeRounds
		if probeEvery == 0 {
			probeEvery = 1
		}
		fmt.Printf("probers: targets %v, one round every %d ops\n", prober.Targets(), probeEvery)
	}

	start = time.Now()
	for i := 0; i < *ops; i++ {
		if prober != nil && i%probeEvery == 0 {
			prober.Round(ctx)
		}
		if eng != nil && !eng.Done() && i > 0 && i%chaosEvery == 0 {
			if _, serr := eng.Step(ctx); serr != nil {
				fmt.Fprintf(os.Stderr, "chaos step: %v\n", serr)
			}
		}
		if *resizeTo > 0 && i == *ops/4 {
			if err := cell.Resize(ctx, *resizeTo); err != nil {
				fatal("resize: %v", err)
			}
			fmt.Printf("t+%v resized cell %d -> %d shards online\n",
				time.Since(start).Round(time.Millisecond), *shards, *resizeTo)
		}
		if *resizeTo > 0 && i == 3**ops/4 {
			if err := cell.Resize(ctx, *shards); err != nil {
				fatal("resize back: %v", err)
			}
			fmt.Printf("t+%v resized cell %d -> %d shards online\n",
				time.Since(start).Round(time.Millisecond), *resizeTo, *shards)
		}
		if *maintain && i == *ops/3 {
			primary := cell.Internal().Store.Get().AddrFor(0)
			if _, err := cell.PlannedMaintenance(ctx, 0); err != nil {
				fatal("maintenance: %v", err)
			}
			fmt.Printf("t+%v planned maintenance: shard 0 -> spare (primary was %s)\n",
				time.Since(start).Round(time.Millisecond), primary)
		}
		if *crash && i == *ops/2 {
			cell.Crash(1)
			fmt.Printf("t+%v crashed shard 1\n", time.Since(start).Round(time.Millisecond))
		}
		if *crash && i == 2**ops/3 {
			if err := cell.Restart(ctx, 1); err != nil {
				fatal("restart: %v", err)
			}
			fmt.Printf("t+%v restarted shard 1 (repairs ran)\n", time.Since(start).Round(time.Millisecond))
		}
		k := []byte(workload.Key(kg.Next()))
		if mix.NextIsGet() {
			if _, _, err := cl.Get(ctx, k); err != nil {
				fmt.Fprintf(os.Stderr, "get %s: %v\n", k, err)
			}
		} else {
			if err := cl.Set(ctx, k, workload.ValueGen(1, *valSize)); err != nil {
				fmt.Fprintf(os.Stderr, "set %s: %v\n", k, err)
			}
		}
	}
	wall := time.Since(start)

	if eng != nil {
		// Heal whatever is still injected, then repair and report.
		if herr := eng.HealAll(ctx); herr != nil {
			fmt.Fprintf(os.Stderr, "chaos heal: %v\n", herr)
		}
		if n, rerr := cell.RepairAll(ctx); rerr == nil {
			fmt.Printf("chaos healed; post-fault repair issued %d repairs\n", n)
		}
		counters := eng.Counters()
		names := make([]string, 0, len(counters))
		for name := range counters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("chaos injections:")
		for _, name := range names {
			fmt.Printf(" %s=%d", name, counters[name])
		}
		fmt.Println()
	}

	cs := cl.Stats()
	fmt.Printf("\n%d ops in %v (%.0f ops/s real)\n", *ops, wall.Round(time.Millisecond), float64(*ops)/wall.Seconds())
	fmt.Printf("client: gets=%d hits=%d misses=%d sets=%d retries=%d rpc_fallbacks=%d hedges=%d failovers=%d budget_denied=%d\n",
		cs.Gets, cs.Hits, cs.Misses, cs.Sets, cs.Retries, cs.RPCFallbacks, cs.Hedges, cs.Failovers, cs.BudgetDenied)
	fmt.Printf("modelled GET latency: p50=%v p99=%v\n", cs.GetP50, cs.GetP99)
	fmt.Printf("cell: %v\n", cell.Stats())
	tr := cell.Tracer()
	fmt.Printf("tracing: ops=%d slow=%d threshold=%v\n",
		tr.Ops(), tr.SlowOpsSeen(), time.Duration(tr.SlowThreshold()))
	if prober != nil {
		prober.Round(ctx) // one post-heal round so the final state is current
		snap := cell.Health().Evaluate()
		fmt.Printf("health: worst=%s rounds=%d\n", snap.Worst(), snap.Rounds)
		for _, hc := range snap.Classes {
			fmt.Printf("  %-5s %-4s burn fast=%.2f slow=%.2f probes good=%d bad=%d p50=%v p99=%v pages=%d warns=%d\n",
				hc.Class, hc.State, hc.FastBurn, hc.SlowBurn, hc.Good, hc.Bad,
				time.Duration(hc.ProbeP50Ns), time.Duration(hc.ProbeP99Ns), hc.Pages, hc.Warns)
		}
	}

	if *listen != "" || *httpAddr != "" {
		fmt.Println("serving until interrupt (ctrl-c)...")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cmcell: "+format+"\n", args...)
	os.Exit(1)
}

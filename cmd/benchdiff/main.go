// Command benchdiff compares two cmbench -json perf-trajectory files
// (BENCH_PRn.json seeds) and reports per-figure median deltas against a
// regression gate.
//
// Columns are matched by (figure name, row label, column name); rows
// present in only one file are listed but not gated. Delta direction is
// inferred from the unit: latency and footprint units (ns, us, B,
// cpu-s/s) regress when they grow, capacity and rate units (qps, ops/s,
// B/s) regress when they shrink, and dimensionless columns (ratios, "x")
// are reported but never gated — a crossover factor moving is a finding,
// not a perf regression.
//
// Columns tagged noisy (wall-clock-denominated rates, load-wall knees)
// are reported with a "~" mark when they move past the gate but never
// count as violations; categorical text columns (e.g. the loadwall
// limiting resource) are diffed as text, also informationally.
//
// Usage:
//
//	benchdiff OLD.json NEW.json            # full report, 5% gate
//	benchdiff -gate 3 OLD.json NEW.json    # tighter gate
//	benchdiff -only fig20,tier OLD NEW     # gate only these figures
//	benchdiff -q OLD.json NEW.json         # violations only
//
// Exits 1 if any gated column regresses past the gate, 0 otherwise — so
// CI and the PR workflow can use it directly: regenerate BENCH_PRn.json,
// then `benchdiff BENCH_PRn-1.json BENCH_PRn.json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"cliquemap/internal/experiments"
)

type benchFile struct {
	Schema     int                  `json:"schema"`
	Reps       int                  `json:"reps"`
	Benchmarks []experiments.Result `json:"benchmarks"`
}

func load(path string) benchFile {
	b, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var f benchFile
	if err := json.Unmarshal(b, &f); err != nil {
		fatal("%s: %v", path, err)
	}
	return f
}

// direction returns +1 when growth is a regression (latency, footprint),
// -1 when shrinkage is (rates), and 0 for ungated dimensionless columns.
func direction(unit string) int {
	switch unit {
	case "ns", "us", "B", "cpu-s/s":
		return 1
	case "qps", "ops/s", "B/s":
		return -1
	}
	return 0
}

func main() {
	gate := flag.Float64("gate", 5, "regression gate in percent")
	only := flag.String("only", "", "comma-separated figure names to gate (default: all)")
	quiet := flag.Bool("q", false, "print only gate violations")
	flag.Parse()
	if flag.NArg() != 2 {
		fatal("usage: benchdiff [-gate pct] [-only figs] OLD.json NEW.json")
	}
	oldF, newF := load(flag.Arg(0)), load(flag.Arg(1))

	gated := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			gated[name] = true
		}
	}

	oldByName := map[string]experiments.Result{}
	for _, b := range oldF.Benchmarks {
		oldByName[b.Name] = b
	}

	violations := 0
	for _, nb := range newF.Benchmarks {
		ob, ok := oldByName[nb.Name]
		if !ok {
			if !*quiet {
				fmt.Printf("== %s: new figure, nothing to diff\n", nb.Name)
			}
			continue
		}
		delete(oldByName, nb.Name)
		inGate := len(gated) == 0 || gated[nb.Name]
		if !*quiet {
			fmt.Printf("== %s\n", nb.Name)
		}
		oldRows := map[string][]experiments.Col{}
		for _, r := range ob.Rows {
			oldRows[r.Label] = r.Cols
		}
		for _, r := range nb.Rows {
			oCols, ok := oldRows[r.Label]
			if !ok {
				if !*quiet {
					fmt.Printf("   %-18s (new row)\n", r.Label)
				}
				continue
			}
			oldByCol := map[string]experiments.Col{}
			for _, c := range oCols {
				oldByCol[c.Name] = c
			}
			for _, c := range r.Cols {
				oc, ok := oldByCol[c.Name]
				if !ok {
					continue
				}
				if c.Text != "" || oc.Text != "" {
					// Categorical column: a change is a finding, not a
					// regression; surface it informationally.
					if !*quiet && oc.Text != c.Text {
						fmt.Printf(" ~ %-18s %-12s %14s -> %-14s\n", r.Label, c.Name, oc.Text, c.Text)
					}
					continue
				}
				if oc.Value == 0 {
					continue
				}
				pct := (c.Value - oc.Value) / math.Abs(oc.Value) * 100
				dir := direction(c.Unit)
				noisy := c.Noisy || oc.Noisy
				regressed := inGate && !noisy && dir != 0 && pct*float64(dir) > *gate
				if regressed {
					violations++
				}
				if !*quiet || regressed {
					mark := " "
					switch {
					case regressed:
						mark = "!"
					case noisy && dir != 0 && math.Abs(pct) > *gate:
						mark = "~" // noisy column moved; informational
					case dir != 0 && -pct*float64(dir) > *gate:
						mark = "+" // improved past the gate
					}
					fmt.Printf(" %s %-18s %-12s %14.4g -> %-14.4g %+7.2f%% %s\n",
						mark, r.Label, c.Name, oc.Value, c.Value, pct, c.Unit)
				}
			}
		}
	}
	for name := range oldByName {
		if !*quiet {
			fmt.Printf("== %s: dropped from new file\n", name)
		}
	}
	if violations > 0 {
		fmt.Printf("benchdiff: %d column(s) regressed past the %.3g%% gate\n", violations, *gate)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("benchdiff: all gated columns within %.3g%%\n", *gate)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

// Command cmbench regenerates the paper's evaluation figures (§7) against
// the simulated substrate and prints each as a text table.
//
// Usage:
//
//	cmbench                      # run every figure
//	cmbench -fig 11              # run one figure
//	cmbench -list                # list available figures
//	cmbench -json out.json       # also write machine-readable results
//	cmbench -reps 3              # repeat each figure, report medians
//
// Absolute values come from the calibrated simulation (see DESIGN.md); the
// comparisons — who wins, by what factor, where crossovers fall — are the
// reproduction targets recorded in EXPERIMENTS.md. The -json output is the
// perf-trajectory record: per-benchmark medians across reps, committed as
// BENCH_PRn.json seeds so future changes can diff against history instead
// of prose.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cliquemap/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "single figure to run (e.g. 11 or fig11)")
	list := flag.Bool("list", false, "list available figures")
	jsonOut := flag.String("json", "", "write machine-readable results to this file")
	reps := flag.Int("reps", 1, "repetitions per figure; medians are reported")
	flag.Parse()

	if *list {
		for _, id := range []string{"3", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "17", "18", "19", "20"} {
			fmt.Printf("fig%s\n", id)
		}
		fmt.Println("14warm")
		fmt.Println("resize")
		fmt.Println("tier")
		fmt.Println("loadwall")
		return
	}
	if *reps < 1 {
		*reps = 1
	}

	var fns []func() experiments.Result
	if *fig != "" {
		f, ok := experiments.ByName(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "cmbench: unknown figure %q (try -list)\n", *fig)
			os.Exit(2)
		}
		fns = []func() experiments.Result{f}
	} else {
		fns = experiments.All()
	}

	var results []experiments.Result
	for _, f := range fns {
		results = append(results, runOne(f, *reps))
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, results, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "cmbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// runOne executes a figure reps times, prints the median-merged result,
// and returns it.
func runOne(f func() experiments.Result, reps int) experiments.Result {
	start := time.Now()
	runs := make([]experiments.Result, reps)
	for i := range runs {
		runs[i] = f()
	}
	res := medianMerge(runs)
	fmt.Print(res.Format())
	fmt.Printf("  (%.1fs, %d rep(s))\n\n", time.Since(start).Seconds(), reps)
	return res
}

// medianMerge folds repeated runs of one figure into per-column medians.
// Rows and columns are matched positionally — every run of a figure
// produces the same shape.
func medianMerge(runs []experiments.Result) experiments.Result {
	res := runs[0]
	if len(runs) == 1 {
		return res
	}
	for ri := range res.Rows {
		for ci := range res.Rows[ri].Cols {
			vals := make([]float64, 0, len(runs))
			for _, r := range runs {
				if ri < len(r.Rows) && ci < len(r.Rows[ri].Cols) {
					vals = append(vals, r.Rows[ri].Cols[ci].Value)
				}
			}
			sort.Float64s(vals)
			res.Rows[ri].Cols[ci].Value = vals[len(vals)/2]
		}
	}
	return res
}

// benchFile is the machine-readable perf-trajectory schema. Keep fields
// additive: downstream re-anchors read historical seeds.
type benchFile struct {
	Schema     int                  `json:"schema"`
	Reps       int                  `json:"reps"`
	Benchmarks []experiments.Result `json:"benchmarks"`
}

func writeJSON(path string, results []experiments.Result, reps int) error {
	b, err := json.MarshalIndent(benchFile{Schema: 1, Reps: reps, Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Command cmbench regenerates the paper's evaluation figures (§7) against
// the simulated substrate and prints each as a text table.
//
// Usage:
//
//	cmbench                # run every figure
//	cmbench -fig 11        # run one figure
//	cmbench -list          # list available figures
//
// Absolute values come from the calibrated simulation (see DESIGN.md); the
// comparisons — who wins, by what factor, where crossovers fall — are the
// reproduction targets recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cliquemap/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "single figure to run (e.g. 11 or fig11)")
	list := flag.Bool("list", false, "list available figures")
	flag.Parse()

	if *list {
		for _, id := range []string{"3", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "17", "18", "19", "20"} {
			fmt.Printf("fig%s\n", id)
		}
		fmt.Println("resize")
		return
	}

	if *fig != "" {
		f, ok := experiments.ByName(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "cmbench: unknown figure %q (try -list)\n", *fig)
			os.Exit(2)
		}
		runOne(f)
		return
	}

	for _, f := range experiments.All() {
		runOne(f)
	}
}

func runOne(f func() experiments.Result) {
	start := time.Now()
	res := f()
	fmt.Print(res.Format())
	fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
}

// Command cmstat inspects a running CliqueMap cell from outside its
// process: it dials the cell's TCP gateway (cmcell -listen, or
// Cell.ServeTCP), discovers the shard map with the Config method, and
// prints each backend's Stats snapshot plus the cell's op-tracing plane
// (Debug method) — the operational dashboard view.
//
// Flags:
//
//	-gateway addr   cell TCP gateway address (default 127.0.0.1:7070)
//	-as name        principal to authenticate as
//	-watch d        refresh every d; successive snapshots print
//	                per-interval rates (ops/s, CPU-ns/op) rather than
//	                cumulative counters
//	-trace          also print the retained slow-op log with per-layer
//	                span breakdowns, and the per-kind exemplar traces
//	-slow n         cap the slow ops requested per snapshot (default 8)
//
// Usage:
//
//	cmcell -ops 100000 -listen 127.0.0.1:7070 &   # a cell with a gateway
//	cmstat -gateway 127.0.0.1:7070 -watch 2s -trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/rpc"
	"cliquemap/internal/trace"
)

func main() {
	gateway := flag.String("gateway", "127.0.0.1:7070", "cell TCP gateway address")
	principal := flag.String("as", "cmstat", "principal to authenticate as")
	watch := flag.Duration("watch", 0, "refresh interval (0 = print once)")
	showTrace := flag.Bool("trace", false, "print slow-op traces and exemplars")
	maxSlow := flag.Int("slow", 8, "slow ops to request per snapshot")
	flag.Parse()

	client, err := rpc.DialTCP(*gateway, *principal)
	if err != nil {
		fatal("dialing %s: %v", *gateway, err)
	}
	defer client.Close()
	ctx := context.Background()

	var prev *snapshot
	for {
		cur, err := printOnce(ctx, client, prev, *showTrace, *maxSlow)
		if err != nil {
			fatal("%v", err)
		}
		if *watch <= 0 {
			return
		}
		prev = cur
		time.Sleep(*watch)
		fmt.Println()
	}
}

// snapshot retains one round of remote state so the next -watch round can
// print per-interval rates instead of cumulative counters.
type snapshot struct {
	at    time.Time
	stats map[string]proto.StatsResp
	debug proto.DebugResp
	dbgOK bool
}

func printOnce(ctx context.Context, client *rpc.TCPClient, prev *snapshot, showTrace bool, maxSlow int) (*snapshot, error) {
	// Discover the shard map. Any backend answers; shard addresses are
	// conventional, so probe the first.
	raw, _, err := client.Call(ctx, "backend-0", proto.MethodConfig, nil)
	if err != nil {
		return nil, fmt.Errorf("config discovery: %w", err)
	}
	cfg, err := proto.UnmarshalConfigResp(raw)
	if err != nil {
		return nil, fmt.Errorf("config decode: %w", err)
	}
	fmt.Printf("cell config id=%d replicas=%d quorum=%d shards=%d\n",
		cfg.ConfigID, cfg.Replicas, cfg.Quorum, len(cfg.ShardAddrs))

	cur := &snapshot{at: time.Now(), stats: make(map[string]proto.StatsResp)}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	delta := prev != nil
	if delta {
		fmt.Fprintln(w, "SHARD\tADDR\tKEYS\tMEMORY\tGETS/s\tSETS/s\tEVICT\tREPAIRS\tREJECTS\tSKEW\tSEALED")
	} else {
		fmt.Fprintln(w, "SHARD\tADDR\tKEYS\tMEMORY\tSETS\tEVICT\tRESIZE\tGROWS\tREPAIRS\tREJECTS\tSTRIPES\tSKEW\tSEALED")
	}
	for shard, addr := range cfg.ShardAddrs {
		raw, _, err := client.Call(ctx, addr, proto.MethodStats, nil)
		if err != nil {
			fmt.Fprintf(w, "%d\t%s\t(unreachable: %v)\n", shard, addr, err)
			continue
		}
		st, err := proto.UnmarshalStatsResp(raw)
		if err != nil {
			fmt.Fprintf(w, "%d\t%s\t(bad stats: %v)\n", shard, addr, err)
			continue
		}
		cur.stats[addr] = st
		if delta {
			elapsed := cur.at.Sub(prev.at).Seconds()
			p := prev.stats[addr]
			fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%s\t%s\t%d\t%d\t%d\t%s\t%v\n",
				shard, addr, st.ResidentKeys, fmtBytes(st.MemoryBytes),
				fmtRate(st.Gets-p.Gets, elapsed), fmtRate(st.Sets-p.Sets, elapsed),
				st.Evictions-p.Evictions, st.RepairsIssued-p.RepairsIssued,
				st.VersionRejects-p.VersionRejects, fmtSkew(st), st.Sealed)
		} else {
			fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%v\n",
				shard, addr, st.ResidentKeys, fmtBytes(st.MemoryBytes),
				st.Sets, st.Evictions, st.IndexResizes, st.DataGrows,
				st.RepairsIssued, st.VersionRejects, st.Stripes,
				fmtSkew(st), st.Sealed)
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}

	// The tracing plane is cell-wide: any reachable backend serves the
	// shared tracer over Debug. Older cells answer ErrNoSuchMethod; skip.
	for _, addr := range cfg.ShardAddrs {
		raw, _, err := client.Call(ctx, addr, proto.MethodDebug, proto.DebugReq{MaxSlow: maxSlow}.Marshal())
		if err != nil {
			continue
		}
		dbg, derr := proto.UnmarshalDebugResp(raw)
		if derr != nil {
			return nil, fmt.Errorf("debug decode: %w", derr)
		}
		cur.debug, cur.dbgOK = dbg, true
		break
	}
	if !cur.dbgOK {
		return cur, nil
	}
	printDebug(cur, prev, showTrace)
	return cur, nil
}

func printDebug(cur, prev *snapshot, showTrace bool) {
	dbg := cur.debug
	fmt.Printf("\ntracing: ops=%d slow=%d slow_threshold=%v\n",
		dbg.OpsTotal, dbg.SlowTotal, time.Duration(dbg.SlowThresholdNs))
	if prev != nil && prev.dbgOK {
		elapsed := cur.at.Sub(prev.at).Seconds()
		fmt.Printf("interval: %s ops/s, %d slow promoted\n",
			fmtRate(dbg.OpsTotal-prev.debug.OpsTotal, elapsed),
			dbg.SlowTotal-prev.debug.SlowTotal)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KIND\tVIA\tCOUNT\tMEAN\tP50\tP90\tP99\tP99.9\tMAX")
	for _, h := range dbg.Hists {
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\n",
			h.Kind, h.Transport, h.Count,
			time.Duration(h.MeanNs), time.Duration(h.P50Ns), time.Duration(h.P90Ns),
			time.Duration(h.P99Ns), time.Duration(h.P999Ns), time.Duration(h.MaxNs))
	}
	w.Flush()

	if len(dbg.CPU) > 0 {
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		if prev != nil && prev.dbgOK {
			// Per-interval attribution: CPU-ns spent per op completed in
			// the window, per component.
			elapsed := cur.at.Sub(prev.at).Seconds()
			fmt.Fprintln(w, "\nCPU COMPONENT\tOPS/s\tCPU-ns/op")
			prevCPU := make(map[string]proto.DebugCPU, len(prev.debug.CPU))
			for _, c := range prev.debug.CPU {
				prevCPU[c.Component] = c
			}
			for _, c := range dbg.CPU {
				p := prevCPU[c.Component]
				dOps := c.Ops - p.Ops
				if dOps == 0 {
					continue
				}
				fmt.Fprintf(w, "%s\t%s\t%d\n", c.Component,
					fmtRate(dOps, elapsed), (c.TotalNs-p.TotalNs)/dOps)
			}
		} else {
			fmt.Fprintln(w, "\nCPU COMPONENT\tOPS\tTOTAL CPU\tCPU-ns/op")
			for _, c := range dbg.CPU {
				perOp := uint64(0)
				if c.Ops > 0 {
					perOp = c.TotalNs / c.Ops
				}
				fmt.Fprintf(w, "%s\t%d\t%v\t%d\n", c.Component, c.Ops,
					time.Duration(c.TotalNs), perOp)
			}
		}
		w.Flush()
	}

	if len(dbg.Hazards) > 0 {
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nHAZARD\tINJECTIONS")
		for _, hz := range dbg.Hazards {
			fmt.Fprintf(w, "%s\t%d\n", hz.Name, hz.Count)
		}
		w.Flush()
	}
	if len(dbg.Health) > 0 {
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nREPLICA\tHEALTH\tDEMOTED")
		for _, rh := range dbg.Health {
			fmt.Fprintf(w, "%s\t%.2f\t%v\n", rh.Addr, float64(rh.ScoreMilli)/1000, rh.Demoted)
		}
		w.Flush()
	}

	if !showTrace {
		return
	}
	if len(dbg.SlowOps) > 0 {
		fmt.Printf("\nslow ops (newest first):\n")
		for _, op := range dbg.SlowOps {
			printOp(op)
		}
	}
	if len(dbg.Exemplars) > 0 {
		fmt.Printf("\nexemplars:\n")
		for _, op := range dbg.Exemplars {
			printOp(op)
		}
	}
}

// printOp renders one retained op and its span timeline, indented under
// the op header, each span as [start +dur] name(arg).
func printOp(op proto.DebugOp) {
	when := ""
	if op.WallNs != 0 {
		when = " at " + time.Unix(0, op.WallNs).Format("15:04:05.000")
	}
	fmt.Printf("  op=%d %s/%s attempts=%d latency=%v bytes=%d%s\n",
		op.ID, op.Kind, op.Transport, op.Attempts, time.Duration(op.Ns), op.Bytes, when)
	for _, sp := range op.Spans {
		fmt.Printf("    [%8v +%8v] %s(%d)\n",
			time.Duration(sp.Start), time.Duration(sp.Dur), trace.CodeName(sp.Code), sp.Arg)
	}
}

func fmtRate(n uint64, seconds float64) string {
	if seconds <= 0 {
		return "-"
	}
	r := float64(n) / seconds
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	}
	return fmt.Sprintf("%.0f", r)
}

// fmtSkew renders the busiest stripe's op count relative to the mean
// stripe (1.00 = perfectly even load; nStripes = everything on one
// stripe). High skew means the bucket-stripe locks are degenerating
// toward a global lock for this workload.
func fmtSkew(st proto.StatsResp) string {
	if st.Stripes == 0 || st.StripeTotalOps == 0 {
		return "-"
	}
	mean := float64(st.StripeTotalOps) / float64(st.Stripes)
	return fmt.Sprintf("%.2f", float64(st.StripeMaxOps)/mean)
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cmstat: "+format+"\n", args...)
	os.Exit(1)
}

// Command cmstat inspects a running CliqueMap cell from outside its
// process: it dials the cell's TCP gateway (cmcell -listen, or
// Cell.ServeTCP), discovers the shard map with the Config method, and
// prints each backend's Stats snapshot — the operational dashboard view.
//
// Usage:
//
//	cmcell -ops 100000 -listen 127.0.0.1:7070 &   # a cell with a gateway
//	cmstat -gateway 127.0.0.1:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/rpc"
)

func main() {
	gateway := flag.String("gateway", "127.0.0.1:7070", "cell TCP gateway address")
	principal := flag.String("as", "cmstat", "principal to authenticate as")
	watch := flag.Duration("watch", 0, "refresh interval (0 = print once)")
	flag.Parse()

	client, err := rpc.DialTCP(*gateway, *principal)
	if err != nil {
		fatal("dialing %s: %v", *gateway, err)
	}
	defer client.Close()
	ctx := context.Background()

	for {
		if err := printOnce(ctx, client); err != nil {
			fatal("%v", err)
		}
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}

func printOnce(ctx context.Context, client *rpc.TCPClient) error {
	// Discover the shard map. Any backend answers; shard addresses are
	// conventional, so probe the first.
	raw, _, err := client.Call(ctx, "backend-0", proto.MethodConfig, nil)
	if err != nil {
		return fmt.Errorf("config discovery: %w", err)
	}
	cfg, err := proto.UnmarshalConfigResp(raw)
	if err != nil {
		return fmt.Errorf("config decode: %w", err)
	}
	fmt.Printf("cell config id=%d replicas=%d quorum=%d shards=%d\n",
		cfg.ConfigID, cfg.Replicas, cfg.Quorum, len(cfg.ShardAddrs))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SHARD\tADDR\tKEYS\tMEMORY\tSETS\tEVICT\tRESIZE\tGROWS\tREPAIRS\tREJECTS\tSTRIPES\tSKEW\tSEALED")
	for shard, addr := range cfg.ShardAddrs {
		raw, _, err := client.Call(ctx, addr, proto.MethodStats, nil)
		if err != nil {
			fmt.Fprintf(w, "%d\t%s\t(unreachable: %v)\n", shard, addr, err)
			continue
		}
		st, err := proto.UnmarshalStatsResp(raw)
		if err != nil {
			fmt.Fprintf(w, "%d\t%s\t(bad stats: %v)\n", shard, addr, err)
			continue
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%v\n",
			shard, addr, st.ResidentKeys, fmtBytes(st.MemoryBytes),
			st.Sets, st.Evictions, st.IndexResizes, st.DataGrows,
			st.RepairsIssued, st.VersionRejects, st.Stripes,
			fmtSkew(st), st.Sealed)
	}
	return w.Flush()
}

// fmtSkew renders the busiest stripe's op count relative to the mean
// stripe (1.00 = perfectly even load; nStripes = everything on one
// stripe). High skew means the bucket-stripe locks are degenerating
// toward a global lock for this workload.
func fmtSkew(st proto.StatsResp) string {
	if st.Stripes == 0 || st.StripeTotalOps == 0 {
		return "-"
	}
	mean := float64(st.StripeTotalOps) / float64(st.Stripes)
	return fmt.Sprintf("%.2f", float64(st.StripeMaxOps)/mean)
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cmstat: "+format+"\n", args...)
	os.Exit(1)
}

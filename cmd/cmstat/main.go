// Command cmstat inspects a running CliqueMap cell from outside its
// process: it dials the cell's TCP gateway (cmcell -listen, or
// Cell.ServeTCP), discovers the shard map with the Config method, and
// prints each backend's Stats snapshot, the cell's op-tracing plane
// (Debug method), the fleet health plane's SLO state (Health method),
// and the key-heat telemetry — the operational dashboard view. When a
// resize is in flight (the Config response carries a pending epoch) a
// RESIZE section shows per-shard handoff progress. Cells that export
// saturation telemetry get a SATURATION section: worker-pool occupancy,
// admission ρ, stripe-lock contention, and NIC engine queueing — the
// live view of the resources a load-wall run names as limiting. Shards
// promoting hot keys (§hot-key adaptive serving) get a PROMOTED section:
// the promotion-set epoch and current members per shard.
//
// Flags:
//
//	-gateway addr   cell TCP gateway address (default 127.0.0.1:7070)
//	-as name        principal to authenticate as
//	-watch d        refresh every d; successive snapshots print
//	                per-interval rates (ops/s, CPU-ns/op) rather than
//	                cumulative counters. Counter resets (a backend
//	                restarted) clamp to zero and are flagged instead of
//	                wrapping to garbage rates.
//	-json           emit one machine-readable JSON document per snapshot
//	                instead of tables (composable with -watch: one
//	                document per line)
//	-trace          also print the retained slow-op log with per-layer
//	                span breakdowns, and the per-kind exemplar traces
//	-tier           print the federation tier's ring table (member cells,
//	                live/base weights, demotion state, ownership shares);
//	                shown automatically when the cell belongs to a tier
//	-slow n         cap the slow ops requested per snapshot (default 8)
//	-hot n          cap the hot keys printed (default 10)
//	-fleet list     scrape EVERY cell in the comma-separated gateway list
//	                (entries "name=addr" or bare "addr") and print one
//	                merged fleet view: true merged latency percentiles,
//	                the fleet SLO burn verdict, the global hot-key union,
//	                and per-cell routing skew vs. ring ownership. Cells
//	                that stop answering mid -watch stay in the table
//	                marked "STALE as of <time>" with their last state.
//	-prom           with -fleet: print Prometheus text exposition of the
//	                merged view instead of tables
//
// Usage:
//
//	cmcell -ops 100000 -listen 127.0.0.1:7070 &   # a cell with a gateway
//	cmstat -gateway 127.0.0.1:7070 -watch 2s -trace
//	cmstat -fleet us=127.0.0.1:7070,eu=127.0.0.1:7071 -watch 2s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/rpc"
	"cliquemap/internal/trace"
)

func main() {
	gateway := flag.String("gateway", "127.0.0.1:7070", "cell TCP gateway address")
	principal := flag.String("as", "cmstat", "principal to authenticate as")
	watch := flag.Duration("watch", 0, "refresh interval (0 = print once)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	showTrace := flag.Bool("trace", false, "print slow-op traces and exemplars")
	showTier := flag.Bool("tier", false, "print the federation tier ring table")
	fleetSpec := flag.String("fleet", "", "comma-separated cell gateways (name=addr or addr) to scrape and merge into one fleet view")
	promOut := flag.Bool("prom", false, "with -fleet: emit Prometheus text exposition instead of tables")
	maxSlow := flag.Int("slow", 8, "slow ops to request per snapshot")
	maxHot := flag.Int("hot", 10, "hot keys to print")
	flag.Parse()

	if *fleetSpec != "" {
		runFleet(context.Background(), *fleetSpec, *principal, *watch, *jsonOut, *promOut, *maxHot)
		return
	}

	client, err := rpc.DialTCP(*gateway, *principal)
	if err != nil {
		fatal("dialing %s: %v", *gateway, err)
	}
	defer client.Close()
	ctx := context.Background()

	var prev *snapshot
	for {
		cur, err := collect(ctx, client, *maxSlow)
		if err != nil {
			fatal("%v", err)
		}
		if *jsonOut {
			printJSON(cur)
		} else {
			printTables(cur, prev, *showTrace, *showTier, *maxHot)
		}
		if *watch <= 0 {
			return
		}
		prev = cur
		time.Sleep(*watch)
		if !*jsonOut {
			fmt.Println()
		}
	}
}

// snapshot retains one round of remote state so the next -watch round can
// print per-interval rates instead of cumulative counters.
type snapshot struct {
	at     time.Time
	cfg    proto.ConfigResp
	stats  map[string]proto.StatsResp
	errs   map[string]string // per-shard fetch failures
	debug  proto.DebugResp
	dbgOK  bool
	health proto.HealthResp
	hlOK   bool
	tier   proto.TierResp
	tierOK bool
}

// collect fetches one full snapshot over the gateway. The Debug and
// Health methods are additive: older cells answer ErrNoSuchMethod and the
// corresponding sections are simply absent.
func collect(ctx context.Context, client *rpc.TCPClient, maxSlow int) (*snapshot, error) {
	// Discover the shard map. Any backend answers; shard addresses are
	// conventional, so probe the first.
	raw, _, err := client.Call(ctx, "backend-0", proto.MethodConfig, nil)
	if err != nil {
		return nil, fmt.Errorf("config discovery: %w", err)
	}
	cfg, err := proto.UnmarshalConfigResp(raw)
	if err != nil {
		return nil, fmt.Errorf("config decode: %w", err)
	}
	cur := &snapshot{
		at:    time.Now(),
		cfg:   cfg,
		stats: make(map[string]proto.StatsResp),
		errs:  make(map[string]string),
	}
	// During a resize the pending epoch may route to addresses outside
	// the old shard map (spares being promoted), so poll the union.
	addrs := append([]string{}, cfg.ShardAddrs...)
	for _, addr := range cfg.PendingShardAddrs {
		seen := false
		for _, a := range addrs {
			seen = seen || a == addr
		}
		if !seen {
			addrs = append(addrs, addr)
		}
	}
	for _, addr := range addrs {
		raw, _, err := client.Call(ctx, addr, proto.MethodStats, nil)
		if err != nil {
			cur.errs[addr] = err.Error()
			continue
		}
		st, serr := proto.UnmarshalStatsResp(raw)
		if serr != nil {
			cur.errs[addr] = serr.Error()
			continue
		}
		cur.stats[addr] = st
	}
	// The tracing and health planes are cell-wide: any reachable backend
	// serves them.
	for _, addr := range cfg.ShardAddrs {
		raw, _, err := client.Call(ctx, addr, proto.MethodDebug, proto.DebugReq{MaxSlow: maxSlow}.Marshal())
		if err != nil {
			continue
		}
		dbg, derr := proto.UnmarshalDebugResp(raw)
		if derr != nil {
			return nil, fmt.Errorf("debug decode: %w", derr)
		}
		cur.debug, cur.dbgOK = dbg, true
		break
	}
	for _, addr := range cfg.ShardAddrs {
		raw, _, err := client.Call(ctx, addr, proto.MethodHealth, proto.HealthReq{}.Marshal())
		if err != nil {
			continue
		}
		hl, herr := proto.UnmarshalHealthResp(raw)
		if herr != nil {
			return nil, fmt.Errorf("health decode: %w", herr)
		}
		cur.health, cur.hlOK = hl, true
		break
	}
	// The tier routing snapshot is fleet-wide: any member cell's backend
	// serves it. Additive method — pre-tier cells error and the section
	// is absent; cells outside a tier answer an empty snapshot.
	for _, addr := range cfg.ShardAddrs {
		raw, _, err := client.Call(ctx, addr, proto.MethodTier, proto.TierReq{}.Marshal())
		if err != nil {
			continue
		}
		ti, terr := proto.UnmarshalTierResp(raw)
		if terr != nil {
			return nil, fmt.Errorf("tier decode: %w", terr)
		}
		cur.tier, cur.tierOK = ti, true
		break
	}
	return cur, nil
}

// jsonReport is the -json document: the full remote state of one
// snapshot, fields omitted when the cell does not serve them.
type jsonReport struct {
	At     time.Time                  `json:"at"`
	Config proto.ConfigResp           `json:"config"`
	Stats  map[string]proto.StatsResp `json:"stats"`
	Errors map[string]string          `json:"errors,omitempty"`
	Debug  *proto.DebugResp           `json:"debug,omitempty"`
	Health *proto.HealthResp          `json:"health,omitempty"`
	Tier   *proto.TierResp            `json:"tier,omitempty"`
}

func printJSON(cur *snapshot) {
	rep := jsonReport{At: cur.at, Config: cur.cfg, Stats: cur.stats, Errors: cur.errs}
	if cur.dbgOK {
		rep.Debug = &cur.debug
	}
	if cur.hlOK {
		rep.Health = &cur.health
	}
	if cur.tierOK && len(cur.tier.Cells) > 0 {
		rep.Tier = &cur.tier
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(rep); err != nil {
		fatal("json encode: %v", err)
	}
}

// delta returns cur−prev for a monotonic counter, clamped at zero. A
// backend restart resets its counters to zero, so a raw uint64
// subtraction would wrap to ~2^64 and print absurd rates; a reset
// interval instead reads as zero and sets restarted so the output can
// say why.
func delta(cur, prev uint64, restarted *bool) uint64 {
	if cur < prev {
		*restarted = true
		return 0
	}
	return cur - prev
}

func printTables(cur, prev *snapshot, showTrace, showTier bool, maxHot int) {
	cfg := cur.cfg
	fmt.Printf("cell config id=%d replicas=%d quorum=%d shards=%d\n",
		cfg.ConfigID, cfg.Replicas, cfg.Quorum, len(cfg.ShardAddrs))
	if cfg.PendingShards > 0 {
		printResize(cur)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	delt := prev != nil
	var restartedShards []string
	if delt {
		fmt.Fprintln(w, "SHARD\tADDR\tKEYS\tMEMORY\tGETS/s\tSETS/s\tEVICT\tREPAIRS\tREJECTS\tSKEW\tSEALED")
	} else {
		fmt.Fprintln(w, "SHARD\tADDR\tKEYS\tMEMORY\tSETS\tEVICT\tRESIZE\tGROWS\tREPAIRS\tREJECTS\tSTRIPES\tSKEW\tSEALED")
	}
	for shard, addr := range cfg.ShardAddrs {
		st, ok := cur.stats[addr]
		if !ok {
			fmt.Fprintf(w, "%d\t%s\t(unreachable: %s)\n", shard, addr, cur.errs[addr])
			continue
		}
		if delt {
			elapsed := cur.at.Sub(prev.at).Seconds()
			p := prev.stats[addr]
			restarted := false
			fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%s\t%s\t%d\t%d\t%d\t%s\t%v\n",
				shard, addr, st.ResidentKeys, fmtBytes(st.MemoryBytes),
				fmtRate(delta(st.Gets, p.Gets, &restarted), elapsed),
				fmtRate(delta(st.Sets, p.Sets, &restarted), elapsed),
				delta(st.Evictions, p.Evictions, &restarted),
				delta(st.RepairsIssued, p.RepairsIssued, &restarted),
				delta(st.VersionRejects, p.VersionRejects, &restarted),
				fmtSkew(st), fmtSeal(st))
			if restarted {
				restartedShards = append(restartedShards, addr)
			}
		} else {
			fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%v\n",
				shard, addr, st.ResidentKeys, fmtBytes(st.MemoryBytes),
				st.Sets, st.Evictions, st.IndexResizes, st.DataGrows,
				st.RepairsIssued, st.VersionRejects, st.Stripes,
				fmtSkew(st), fmtSeal(st))
		}
	}
	w.Flush()
	if len(restartedShards) > 0 {
		fmt.Printf("note: counters reset on %s (backend restart); affected deltas clamped to zero\n",
			strings.Join(restartedShards, ", "))
	}

	printRecovery(cur)
	printSaturation(cur, prev)
	printPromoted(cur)

	if cur.tierOK && (showTier || len(cur.tier.Cells) > 0) {
		printTier(cur.tier)
	}
	if cur.hlOK {
		printHealth(cur.health)
	}
	if cur.dbgOK {
		printDebug(cur, prev, showTrace, maxHot)
	}
}

// printRecovery renders the durability plane: one row per shard with
// the age of its last durable checkpoint, the delta journal depth since
// that checkpoint, and — after a warm restart — how much of the corpus
// came back from disk and how much of it has self-validated against the
// quorum. Omitted entirely when no shard runs with a data directory.
func printRecovery(cur *snapshot) {
	cfg := cur.cfg
	any := false
	for _, addr := range cfg.ShardAddrs {
		st, ok := cur.stats[addr]
		if ok && (st.CkptUnixNano != 0 || st.JournalRecords != 0 || st.JournalBytes != 0 ||
			st.RecoveredKeys != 0 || st.Recovering) {
			any = true
			break
		}
	}
	if !any {
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\nRECOVERY\tADDR\tCKPT EPOCH\tCKPT AGE\tJOURNAL\tJBYTES\tRECOVERED\tREPLAYED\tSELFVAL\tRECOVERING")
	for shard, addr := range cfg.ShardAddrs {
		st, ok := cur.stats[addr]
		if !ok {
			continue
		}
		age := "-"
		if st.CkptUnixNano != 0 {
			age = cur.at.Sub(time.Unix(0, int64(st.CkptUnixNano))).Round(time.Second).String()
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%d\t%s\t%d\t%d\t%d\t%v\n",
			shard, addr, st.CkptEpoch, age,
			st.JournalRecords, fmtBytes(st.JournalBytes),
			st.RecoveredKeys, st.ReplayedRecords, st.SelfValidated, st.Recovering)
	}
	w.Flush()
}

// printSaturation renders the per-shard saturation plane: how busy each
// resource on the serving path is, so a load-wall report's "limited by X"
// can be read straight off a live cell. Gauges (worker occupancy, ρ,
// engines) are instantaneous; the queue-time columns are cumulative
// counters, so under -watch they print as queue-seconds accumulated per
// wall second over the interval — the same score the loadwall probe
// ranks resources by — with restart resets clamped to zero like every
// other counter. Omitted for cells that predate the telemetry (all
// saturation fields decode as zero).
func printSaturation(cur, prev *snapshot) {
	cfg := cur.cfg
	any := false
	for _, addr := range cfg.ShardAddrs {
		st, ok := cur.stats[addr]
		if ok && (st.RPCWorkerLimit != 0 || st.NICEngines != 0) {
			any = true
			break
		}
	}
	if !any {
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	delt := prev != nil
	if delt {
		fmt.Fprintln(w, "\nSATURATION\tADDR\tWORKERS\tRPCρ\tQWAIT s/s\tLOCK s/s\tCONT/s\tENG\tNICρ\tNICQ s/s\tNICOPS/s")
	} else {
		fmt.Fprintln(w, "\nSATURATION\tADDR\tWORKERS\tRPCρ\tQUEUED\tQWAIT\tCONTENDED\tLOCKWAIT\tENG\tNICρ\tNICQ\tNICOPS")
	}
	var restartedShards []string
	for shard, addr := range cfg.ShardAddrs {
		st, ok := cur.stats[addr]
		if !ok {
			continue
		}
		workers := fmt.Sprintf("%d/%d", st.RPCWorkersBusy, st.RPCWorkerLimit)
		if delt {
			elapsed := cur.at.Sub(prev.at).Seconds()
			p := prev.stats[addr]
			restarted := false
			qwait := delta(st.RPCSubmitWaitNs, p.RPCSubmitWaitNs, &restarted) +
				delta(st.RPCQueueNs, p.RPCQueueNs, &restarted)
			lock := delta(st.StripeWaitNs, p.StripeWaitNs, &restarted)
			cont := delta(st.StripeContended, p.StripeContended, &restarted)
			nicq := delta(st.NICQueueNs, p.NICQueueNs, &restarted)
			nops := delta(st.NICOps, p.NICOps, &restarted)
			fmt.Fprintf(w, "%d\t%s\t%s\t%.2f\t%s\t%s\t%s\t%d\t%.2f\t%s\t%s\n",
				shard, addr, workers, float64(st.RPCRhoMilli)/1000,
				fmtQSec(qwait, elapsed), fmtQSec(lock, elapsed),
				fmtRate(cont, elapsed),
				st.NICEngines, float64(st.NICRhoMilli)/1000,
				fmtQSec(nicq, elapsed), fmtRate(nops, elapsed))
			if restarted {
				restartedShards = append(restartedShards, addr)
			}
		} else {
			fmt.Fprintf(w, "%d\t%s\t%s\t%.2f\t%d\t%v\t%d\t%v\t%d\t%.2f\t%v\t%d\n",
				shard, addr, workers, float64(st.RPCRhoMilli)/1000,
				st.RPCQueuedCalls,
				time.Duration(st.RPCSubmitWaitNs+st.RPCQueueNs),
				st.StripeContended, time.Duration(st.StripeWaitNs),
				st.NICEngines, float64(st.NICRhoMilli)/1000,
				time.Duration(st.NICQueueNs), st.NICOps)
		}
	}
	w.Flush()
	if len(restartedShards) > 0 {
		fmt.Printf("note: saturation counters reset on %s (backend restart); affected deltas clamped to zero\n",
			strings.Join(restartedShards, ", "))
	}
}

// printPromoted renders the hot-key promotion plane: one row per shard
// holding promoted keys, with the promotion-set epoch (bumped on every
// membership change — clients revalidate their piggybacked view against
// it) and the keys themselves. Omitted when no shard promotes (HotK
// disabled, or the workload has no stable head).
func printPromoted(cur *snapshot) {
	cfg := cur.cfg
	any := false
	for _, addr := range cfg.ShardAddrs {
		if st, ok := cur.stats[addr]; ok && (st.HotEpoch != 0 || len(st.HotKeys) > 0) {
			any = true
			break
		}
	}
	if !any {
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\nPROMOTED\tADDR\tEPOCH\tKEYS\tSET")
	for shard, addr := range cfg.ShardAddrs {
		st, ok := cur.stats[addr]
		if !ok {
			continue
		}
		names := make([]string, 0, len(st.HotKeys))
		for i, k := range st.HotKeys {
			if i == 4 {
				names = append(names, fmt.Sprintf("+%d more", len(st.HotKeys)-i))
				break
			}
			names = append(names, fmtKey(string(k)))
		}
		set := strings.Join(names, " ")
		if set == "" {
			set = "-"
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%s\n", shard, addr, st.HotEpoch, len(st.HotKeys), set)
	}
	w.Flush()
}

// fmtQSec renders accumulated queue-nanoseconds over a wall interval as
// queue-seconds per second: 1.00 ≈ one op-stream's worth of continuous
// waiting on that resource.
func fmtQSec(ns uint64, seconds float64) string {
	if seconds <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(ns)/1e9/seconds)
}

// printTier renders the federation router's ring table: one row per
// member cell with its live routing weight against the configured base,
// the health state driving any demotion, and the exact keyspace share
// its ring arcs own.
func printTier(t proto.TierResp) {
	if len(t.Cells) == 0 {
		fmt.Printf("\ntier: cell is not part of a federation tier\n")
		return
	}
	fmt.Printf("\ntier: ring v%d, %d vnodes/unit weight, %d cells\n",
		t.RingVersion, t.Vnodes, len(t.Cells))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CELL\tSTATE\tWEIGHT\tBASE\tOWNED\tDEMOTED")
	for _, c := range t.Cells {
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\t%.1f%%\t%v\n",
			c.Name, strings.ToUpper(c.State),
			float64(c.WeightMilli)/1000, float64(c.BaseMilli)/1000,
			float64(c.OwnedPpm)/1e4, c.Demoted)
	}
	w.Flush()
}

// printResize renders an in-flight resize: the old→new shard count, how
// many old shards have sealed their handoff (sealed ≥ R−Q+1 of a cohort
// flips read authority to the pending epoch), and one row per pending
// shard with the owning backend's own view of the handoff — useful for
// spotting a resize wedged mid-shard.
func printResize(cur *snapshot) {
	cfg := cur.cfg
	sealed := 0
	for _, s := range cfg.SealedOld {
		if s {
			sealed++
		}
	}
	fmt.Printf("RESIZE in progress: %d -> %d shards, %d/%d old shards sealed\n",
		len(cfg.ShardAddrs), cfg.PendingShards, sealed, len(cfg.SealedOld))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PENDING\tADDR\tOLD SHARD\tOLD SEALED\tBACKEND HSEAL\tBACKEND TARGET")
	for ps, addr := range cfg.PendingShardAddrs {
		oldShard, oldSealed := "-", "-"
		for s, a := range cfg.ShardAddrs {
			if a == addr {
				oldShard = fmt.Sprintf("%d", s)
				if s < len(cfg.SealedOld) {
					oldSealed = fmt.Sprintf("%v", cfg.SealedOld[s])
				}
			}
		}
		hseal, target := "?", "?"
		if st, ok := cur.stats[addr]; ok {
			hseal = fmt.Sprintf("%v", st.HandoffSealed)
			target = fmt.Sprintf("%d", st.PendingShards)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\n", ps, addr, oldShard, oldSealed, hseal, target)
	}
	w.Flush()
}

// printHealth renders the SLO engine's evaluated state: one row per op
// class with its alert state and burn rates, then per-probe-target
// availability.
func printHealth(h proto.HealthResp) {
	fmt.Printf("\nhealth: prober rounds=%d\n", h.Rounds)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CLASS\tSTATE\tSLO\tBURN(fast)\tBURN(slow)\tWINDOW G/B\tPROBE P50\tP99\tPAGES\tWARNS")
	for _, c := range h.Classes {
		fmt.Fprintf(w, "%s\t%s\t%s<%v\t%.2f\t%.2f\t%d/%d\t%v\t%v\t%d\t%d\n",
			c.Class, strings.ToUpper(c.State),
			fmtPpm(c.AvailabilityPpm), time.Duration(c.LatencyTargetNs),
			float64(c.FastBurnMilli)/1000, float64(c.SlowBurnMilli)/1000,
			c.WindowGood, c.WindowBad,
			time.Duration(c.ProbeP50Ns), time.Duration(c.ProbeP99Ns),
			c.Pages, c.Warns)
	}
	w.Flush()
	if len(h.Targets) > 0 {
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "TARGET\tPROBES\tBAD\tAVAIL")
		for _, t := range h.Targets {
			total := t.Good + t.Bad
			avail := 1.0
			if total > 0 {
				avail = float64(t.Good) / float64(total)
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%.4f\n", t.Name, total, t.Bad, avail)
		}
		w.Flush()
	}
}

// printHeat renders the key-heat telemetry: the heavy-hitter sketch
// (counts are over-estimates by at most ERR) and the per-stripe load
// spread.
func printHeat(dbg proto.DebugResp, maxHot int) {
	if len(dbg.HotKeys) == 0 && len(dbg.StripeHeat) == 0 {
		return
	}
	if n := len(dbg.HotKeys); n > 0 {
		if n > maxHot {
			n = maxHot
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nHOT KEY\tCOUNT\tERR")
		for _, hk := range dbg.HotKeys[:n] {
			fmt.Fprintf(w, "%s\t%d\t%d\n", fmtKey(hk.Key), hk.Count, hk.Err)
		}
		w.Flush()
	}
	if len(dbg.StripeHeat) > 0 {
		var total, max uint64
		for _, n := range dbg.StripeHeat {
			total += n
			if n > max {
				max = n
			}
		}
		if total > 0 {
			mean := float64(total) / float64(len(dbg.StripeHeat))
			fmt.Printf("stripe heat: %d stripes, %d ops, hottest %.2fx mean\n",
				len(dbg.StripeHeat), total, float64(max)/mean)
		}
	}
}

func printDebug(cur, prev *snapshot, showTrace bool, maxHot int) {
	dbg := cur.debug
	fmt.Printf("\ntracing: ops=%d slow=%d slow_threshold=%v\n",
		dbg.OpsTotal, dbg.SlowTotal, time.Duration(dbg.SlowThresholdNs))
	if prev != nil && prev.dbgOK {
		elapsed := cur.at.Sub(prev.at).Seconds()
		restarted := false
		dOps := delta(dbg.OpsTotal, prev.debug.OpsTotal, &restarted)
		dSlow := delta(dbg.SlowTotal, prev.debug.SlowTotal, &restarted)
		note := ""
		if restarted {
			note = " (tracer reset; interval clamped)"
		}
		fmt.Printf("interval: %s ops/s, %d slow promoted%s\n",
			fmtRate(dOps, elapsed), dSlow, note)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KIND\tVIA\tCOUNT\tMEAN\tP50\tP90\tP99\tP99.9\tMAX")
	for _, h := range dbg.Hists {
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\n",
			h.Kind, h.Transport, h.Count,
			time.Duration(h.MeanNs), time.Duration(h.P50Ns), time.Duration(h.P90Ns),
			time.Duration(h.P99Ns), time.Duration(h.P999Ns), time.Duration(h.MaxNs))
	}
	w.Flush()

	if len(dbg.CPU) > 0 {
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		if prev != nil && prev.dbgOK {
			// Per-interval attribution: CPU-ns spent per op completed in
			// the window, per component.
			elapsed := cur.at.Sub(prev.at).Seconds()
			fmt.Fprintln(w, "\nCPU COMPONENT\tOPS/s\tCPU-ns/op")
			prevCPU := make(map[string]proto.DebugCPU, len(prev.debug.CPU))
			for _, c := range prev.debug.CPU {
				prevCPU[c.Component] = c
			}
			for _, c := range dbg.CPU {
				p := prevCPU[c.Component]
				restarted := false
				dOps := delta(c.Ops, p.Ops, &restarted)
				dNs := delta(c.TotalNs, p.TotalNs, &restarted)
				if dOps == 0 || restarted {
					continue
				}
				fmt.Fprintf(w, "%s\t%s\t%d\n", c.Component,
					fmtRate(dOps, elapsed), dNs/dOps)
			}
		} else {
			fmt.Fprintln(w, "\nCPU COMPONENT\tOPS\tTOTAL CPU\tCPU-ns/op")
			for _, c := range dbg.CPU {
				perOp := uint64(0)
				if c.Ops > 0 {
					perOp = c.TotalNs / c.Ops
				}
				fmt.Fprintf(w, "%s\t%d\t%v\t%d\n", c.Component, c.Ops,
					time.Duration(c.TotalNs), perOp)
			}
		}
		w.Flush()
	}

	if len(dbg.Hazards) > 0 {
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nHAZARD\tINJECTIONS")
		for _, hz := range dbg.Hazards {
			fmt.Fprintf(w, "%s\t%d\n", hz.Name, hz.Count)
		}
		w.Flush()
	}
	if len(dbg.Health) > 0 {
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nREPLICA\tHEALTH\tDEMOTED")
		for _, rh := range dbg.Health {
			fmt.Fprintf(w, "%s\t%.2f\t%v\n", rh.Addr, float64(rh.ScoreMilli)/1000, rh.Demoted)
		}
		w.Flush()
	}

	printHeat(dbg, maxHot)

	if !showTrace {
		return
	}
	if len(dbg.SlowOps) > 0 {
		fmt.Printf("\nslow ops (newest first):\n")
		for _, op := range dbg.SlowOps {
			printOp(op)
		}
	}
	if len(dbg.Exemplars) > 0 {
		fmt.Printf("\nexemplars:\n")
		for _, op := range dbg.Exemplars {
			printOp(op)
		}
	}
}

// printOp renders one retained op and its span timeline, indented under
// the op header, each span as [start +dur] name(arg).
func printOp(op proto.DebugOp) {
	when := ""
	if op.WallNs != 0 {
		when = " at " + time.Unix(0, op.WallNs).Format("15:04:05.000")
	}
	fmt.Printf("  op=%d %s/%s attempts=%d latency=%v bytes=%d%s\n",
		op.ID, op.Kind, op.Transport, op.Attempts, time.Duration(op.Ns), op.Bytes, when)
	for _, sp := range op.Spans {
		fmt.Printf("    [%8v +%8v] %s(%d)\n",
			time.Duration(sp.Start), time.Duration(sp.Dur), trace.CodeName(sp.Code), sp.Arg)
	}
}

func fmtRate(n uint64, seconds float64) string {
	if seconds <= 0 {
		return "-"
	}
	r := float64(n) / seconds
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	}
	return fmt.Sprintf("%.0f", r)
}

// fmtPpm renders a parts-per-million availability objective ("999000" →
// "99.9%").
func fmtPpm(ppm uint64) string {
	return fmt.Sprintf("%g%%", float64(ppm)/1e4)
}

// fmtKey renders a possibly-binary key for terminal display.
func fmtKey(k string) string {
	clean := true
	for i := 0; i < len(k); i++ {
		if k[i] < 0x20 || k[i] > 0x7e {
			clean = false
			break
		}
	}
	if clean {
		return k
	}
	return fmt.Sprintf("%q", k)
}

// fmtSeal renders the two independent seals on a backend: the corpus
// seal (R2Immutable mode) and the handoff seal (a shard migration is
// draining its journal; mutations bounce until the seal lifts).
func fmtSeal(st proto.StatsResp) string {
	switch {
	case st.Sealed && st.HandoffSealed:
		return "corpus+handoff"
	case st.Sealed:
		return "corpus"
	case st.HandoffSealed:
		return "handoff"
	}
	return "-"
}

// fmtSkew renders the busiest stripe's op count relative to the mean
// stripe (1.00 = perfectly even load; nStripes = everything on one
// stripe). High skew means the bucket-stripe locks are degenerating
// toward a global lock for this workload.
func fmtSkew(st proto.StatsResp) string {
	if st.Stripes == 0 || st.StripeTotalOps == 0 {
		return "-"
	}
	mean := float64(st.StripeTotalOps) / float64(st.Stripes)
	return fmt.Sprintf("%.2f", float64(st.StripeMaxOps)/mean)
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cmstat: "+format+"\n", args...)
	os.Exit(1)
}

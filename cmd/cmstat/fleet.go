package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"cliquemap/internal/fabric"
	"cliquemap/internal/fleet"
	"cliquemap/internal/rpc"
)

// redialCaller lazily dials a cell gateway and re-dials after a failed
// call. A fleet scrape must outlive any one cell: a gateway that is down
// at startup or dies mid-watch surfaces as a DOWN/STALE roster row and
// recovers on its own once the cell returns, instead of killing cmstat.
type redialCaller struct {
	addr      string
	principal string
	mu        sync.Mutex
	cl        *rpc.TCPClient
}

func (r *redialCaller) Call(ctx context.Context, addr, method string, req []byte) ([]byte, fabric.OpTrace, error) {
	r.mu.Lock()
	cl := r.cl
	if cl == nil {
		var err error
		if cl, err = rpc.DialTCP(r.addr, r.principal); err != nil {
			r.mu.Unlock()
			return nil, fabric.OpTrace{}, err
		}
		r.cl = cl
	}
	r.mu.Unlock()
	resp, tr, err := cl.Call(ctx, addr, method, req)
	if err != nil {
		r.mu.Lock()
		if r.cl == cl {
			cl.Close()
			r.cl = nil
		}
		r.mu.Unlock()
	}
	return resp, tr, err
}

// parseFleetTargets parses the -fleet argument: a comma-separated list of
// cell gateways, each optionally named ("us=host:port" or bare
// "host:port", which is named cell<i>).
func parseFleetTargets(spec, principal string) ([]fleet.Target, error) {
	var out []fleet.Target
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr := fmt.Sprintf("cell%d", i), part
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			name, addr = part[:eq], part[eq+1:]
		}
		out = append(out, fleet.Target{Name: name, Caller: &redialCaller{addr: addr, principal: principal}})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no gateways in -fleet %q", spec)
	}
	return out, nil
}

// runFleet drives fleet mode: scrape all cells, render the merged view,
// and repeat on -watch. Output is one of table, -json document, or -prom
// text exposition per round.
func runFleet(ctx context.Context, spec, principal string, watch time.Duration, jsonOut, promOut bool, maxHot int) {
	targets, err := parseFleetTargets(spec, principal)
	if err != nil {
		fatal("%v", err)
	}
	agg := fleet.New(targets, fleet.Options{Interval: watch})
	var prev *fleet.View
	for {
		cur := agg.ScrapeOnce(ctx)
		switch {
		case promOut:
			cur.WriteProm(os.Stdout)
		case jsonOut:
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(cur); err != nil {
				fatal("json encode: %v", err)
			}
		default:
			printFleet(cur, prev, maxHot)
		}
		if watch <= 0 {
			return
		}
		prev = cur
		time.Sleep(watch)
		if !jsonOut && !promOut {
			fmt.Println()
		}
	}
}

// printFleet renders one merged fleet view: the per-cell roster (with
// stale-as-of markers for cells that dropped out mid-watch), the merged
// latency distributions, the fleet SLO verdict, the global hot-key
// ranking, and the routing-skew table.
func printFleet(cur, prev *fleet.View, maxHot int) {
	live := 0
	for _, c := range cur.Cells {
		if !c.Stale && c.Err == "" {
			live++
		}
	}
	fmt.Printf("fleet: %d/%d cells live, verdict=%s", live, len(cur.Cells), strings.ToUpper(cur.Verdict))
	if cur.RingOK {
		fmt.Printf(", ring v%d", cur.Ring.RingVersion)
	}
	fmt.Println()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CELL\tSTATE\tKEYS\tMEMORY\tOPS\tOWNED\tOBSERVED\tSKEW")
	skews := make(map[string]fleet.CellSkew, len(cur.Skew))
	for _, s := range cur.Skew {
		skews[s.Name] = s
	}
	for _, c := range cur.Cells {
		state := "up"
		switch {
		case c.Stale:
			state = "STALE as of " + c.At.Format("15:04:05")
		case c.Err != "":
			state = "DOWN (" + c.Err + ")"
		}
		owned, observed, ratio := "-", "-", "-"
		if s, ok := skews[c.Name]; ok {
			observed = fmt.Sprintf("%.1f%%", float64(s.ObservedPpm)/1e4)
			if s.OwnedPpm > 0 {
				owned = fmt.Sprintf("%.1f%%", float64(s.OwnedPpm)/1e4)
				ratio = fmt.Sprintf("%.2f", float64(s.RatioMilli)/1000)
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%d\t%s\t%s\t%s\n",
			c.Name, state, c.Keys, fmtBytes(c.Bytes), c.Ops, owned, observed, ratio)
	}
	w.Flush()

	if len(cur.Hists) > 0 {
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nKIND\tVIA\tCELLS\tCOUNT\tMEAN\tP50\tP90\tP99\tP99.9\tMAX")
		for _, h := range cur.Hists {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%v\t%v\t%v\t%v\t%v\t%v\n",
				h.Kind, h.Transport, h.Cells, h.Count,
				time.Duration(h.MeanNs), time.Duration(h.P50Ns), time.Duration(h.P90Ns),
				time.Duration(h.P99Ns), time.Duration(h.P999Ns), time.Duration(h.MaxNs))
		}
		w.Flush()
	}

	if len(cur.Classes) > 0 {
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nSLO CLASS\tSTATE\tCELLS\tBURN(fast,max)\tBURN(slow,max)\tWINDOW G/B\tPAGES\tWARNS")
		for _, c := range cur.Classes {
			fmt.Fprintf(w, "%s\t%s\t%d\t%.2f\t%.2f\t%d/%d\t%d\t%d\n",
				c.Class, strings.ToUpper(c.State), c.Cells,
				float64(c.FastBurnMilli)/1000, float64(c.SlowBurnMilli)/1000,
				c.WindowGood, c.WindowBad, c.Pages, c.Warns)
		}
		w.Flush()
	}

	if n := len(cur.HotKeys); n > 0 {
		if n > maxHot {
			n = maxHot
		}
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\nGLOBAL HOT KEY\tCOUNT\tERR")
		for _, hk := range cur.HotKeys[:n] {
			fmt.Fprintf(w, "%s\t%d\t%d\n", fmtKey(hk.Key), hk.Count, hk.Err)
		}
		w.Flush()
	}

	if prev != nil {
		elapsed := cur.At.Sub(prev.At).Seconds()
		var dOps uint64
		for _, s := range cur.Skew {
			dOps += s.Ops
		}
		if elapsed > 0 {
			fmt.Printf("interval: %s ops/s fleet-wide\n", fmtRate(dOps, elapsed))
		}
	}
}

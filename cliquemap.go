// Package cliquemap is a faithful open-source reproduction of CliqueMap
// (Singhvi et al., SIGCOMM 2021), Google's hybrid RMA/RPC in-memory
// key-value caching system.
//
// GETs are served by one-sided remote memory access against the backends'
// registered index and data regions — no backend application code runs —
// while SET/ERASE/CAS and all control traffic travel over an RPC framework
// that carries authentication, protocol versioning, and evolution support.
// Replication mode R=3.2 keeps three uncoordinated copies of every pair
// and resolves consistency with a client-side majority quorum, preferred-
// backend selection, self-validating responses, and per-operation retries.
//
// The RMA hardware the paper ran on (Pony Express, 1RMA) is substituted by
// calibrated simulations (see DESIGN.md); the full protocol stack — memory
// layouts, checksums, version quorums, eviction, reshaping, tombstones,
// repair, warm-spare migration — is real and runs in-process.
//
// Quickstart:
//
//	cm, _ := cliquemap.NewCell(cliquemap.Options{Shards: 3, Spares: 1, Mode: cliquemap.R32})
//	cl := cm.NewClient(cliquemap.ClientOptions{})
//	cl.Set(ctx, []byte("k"), []byte("v"))
//	v, ok, _ := cl.Get(ctx, []byte("k"))
package cliquemap

import (
	"context"
	"fmt"
	"io"
	"time"

	"cliquemap/internal/chaos"
	"cliquemap/internal/core/backend"
	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/hashring"
	"cliquemap/internal/health"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
	"cliquemap/internal/truetime"
)

// Mode selects the replication scheme (§5, §6.4 of the paper).
type Mode int

const (
	// R32 keeps three copies read through a client-side quorum of two.
	// It is the zero value: cells replicate unless told otherwise.
	R32 Mode = iota
	// R1 keeps one copy; warm spares provide maintenance continuity.
	R1
	// R2Immutable keeps two copies of an immutable corpus.
	R2Immutable
)

func (m Mode) internal() config.Mode {
	switch m {
	case R1:
		return config.R1
	case R2Immutable:
		return config.R2Immutable
	default:
		return config.R32
	}
}

// String names the mode as the paper does.
func (m Mode) String() string { return m.internal().String() }

// Transport selects the simulated RMA substrate (§7.2.4).
type Transport int

const (
	// PonyExpress is the software NIC: SCAR available, engines scale out.
	PonyExpress Transport = iota
	// OneRMA is the all-hardware NIC: 2×R only, lower RTT.
	OneRMA
)

// Strategy selects the GET path (§6.3).
type Strategy int

const (
	// Lookup2xR uses two dependent RMA reads (any transport).
	Lookup2xR Strategy = iota
	// LookupSCAR uses single-round-trip scan-and-read (Pony Express).
	LookupSCAR
	// LookupMSG uses two-sided NIC messaging.
	LookupMSG
	// LookupRPC uses full RPC (WAN / no-RMA fallback).
	LookupRPC
)

func (s Strategy) internal() client.Strategy {
	switch s {
	case LookupSCAR:
		return client.StrategySCAR
	case LookupMSG:
		return client.StrategyMSG
	case LookupRPC:
		return client.StrategyRPC
	default:
		return client.Strategy2xR
	}
}

// Version is a CliqueMap VersionNumber: {TrueTime, ClientID, Seq},
// globally unique and monotonic per key (§5.2). Use it with Cas.
type Version = truetime.Version

// Options configures a cell.
type Options struct {
	// Shards is the logical backend count (default 3).
	Shards int
	// Spares is the warm-spare count for planned maintenance (§6.1).
	Spares int
	// Mode is the replication scheme (default R32).
	Mode Mode
	// Transport selects the RMA substrate (default PonyExpress).
	Transport Transport
	// ClientHosts is the number of fabric hosts reserved for clients.
	ClientHosts int
	// Eviction names the replacement policy: "lru" (default), "arc",
	// "clock", or "slfu" (§4.2).
	Eviction string
	// Buckets and Ways shape each backend's index region (defaults 256
	// buckets × 14 ways — 1KB buckets as in the paper).
	Buckets, Ways int
	// DataBytes / DataMaxBytes size each backend's data region: initially
	// populated bytes and the reserved reshaping ceiling (§4.1).
	DataBytes, DataMaxBytes int
	// DisableReshaping reverts to the pre-allocate-for-peak baseline the
	// paper argues against (Figure 3's "before" world).
	DisableReshaping bool
	// OverflowFallback enables the RPC side-table for bucket overflow
	// (§4.2).
	OverflowFallback bool
	// CompressThreshold enables DEFLATE compression of values at least
	// this many bytes (0 disables) — §9's post-launch compression feature.
	CompressThreshold int
	// TombstoneCap sizes each backend's exact tombstone cache (§5.2) and
	// its pending-settle queue of evicted tombstones (default 8192 each).
	TombstoneCap int
	// HotK caps each backend's promoted hot-key set (0 takes the default
	// of 8; negative disables promotion). Promoted keys gain all-replica
	// residency and are advertised to clients for near-caching/steering.
	HotK int
	// Hash overrides the cell-wide 128-bit key hash (§6.5 added
	// customizable hash functions for disaggregation users): hi selects
	// the backend, lo the bucket. All clients of the cell share it. nil
	// uses the default double-FNV hash.
	Hash func(key []byte) (hi, lo uint64)
	// Health shapes the fleet health plane's SLO windows, burn-rate
	// thresholds, and per-op-class objectives; zero values take the
	// production defaults (5m/1h virtual windows, page at burn 14.4).
	Health health.Config
	// DataDir, when non-empty, enables durable warm restarts: every
	// backend task checkpoints its corpus and journals mutations under
	// DataDir/<task-addr>, and a restarted task (or a restarted cmcell
	// process pointed at the same directory) recovers its pre-crash
	// corpus from checkpoint + journal replay instead of rejoining empty.
	DataDir string
}

// KeyHash is the 128-bit key hash: Hi selects the backend cohort, Lo the
// bucket within an index.
type KeyHash = hashring.KeyHash

// DefaultHash is the cell's default key hash, exported so custom hash
// functions (Options.Hash) can compose with it.
func DefaultHash(key []byte) KeyHash { return hashring.DefaultHash(key) }

// ClientOptions configures a client.
type ClientOptions struct {
	// Strategy is the GET path (default Lookup2xR).
	Strategy Strategy
	// Retries bounds per-op transparent retries (default 5).
	Retries int
	// TouchBatch enables batched access-record reporting at the given
	// flush threshold; 0 disables (§4.2).
	TouchBatch int
	// NearCacheEntries sizes the client-side near-cache for server-
	// promoted hot keys; 0 disables it. Near-serves are validated by a
	// 1-RTT index-only quorum read, so they never return a value no
	// quorum currently vouches for. RMA strategies (2xR, SCAR) only.
	// Requires TouchBatch > 0: promotion decisions ride Touch acks.
	NearCacheEntries int
	// HotSteer fetches promoted keys with large values over RPC instead
	// of the RMA path (the Figure 20 value-size crossover).
	HotSteer bool
	// HotSpread rotates promoted keys' data reads across the healthy
	// quorum members instead of always reading the fastest replica.
	HotSpread bool
}

// Cell is a running CliqueMap cell: backends, spares, NICs, config store.
type Cell struct {
	c *cell.Cell
}

// NewCell builds and starts a cell.
func NewCell(opt Options) (*Cell, error) {
	copt := cell.Options{
		Shards:      opt.Shards,
		Spares:      opt.Spares,
		Mode:        opt.Mode.internal(),
		ClientHosts: opt.ClientHosts,
		Health:      opt.Health,
		DataDir:     opt.DataDir,
		Backend: backend.Options{
			Policy:            opt.Eviction,
			DataBytes:         opt.DataBytes,
			DataMaxBytes:      opt.DataMaxBytes,
			OverflowFallback:  opt.OverflowFallback,
			ReshapeEnabled:    !opt.DisableReshaping,
			CompressThreshold: opt.CompressThreshold,
			TombstoneCap:      opt.TombstoneCap,
			HotK:              opt.HotK,
		},
	}
	if opt.Buckets > 0 || opt.Ways > 0 {
		copt.Backend.Geometry = layout.Geometry{Buckets: opt.Buckets, Ways: opt.Ways}
	}
	if opt.Transport == OneRMA {
		copt.Transport = cell.Transport1RMA
	}
	if opt.Hash != nil {
		copt.Hash = hashring.FromPair(opt.Hash)
	}
	c, err := cell.New(copt)
	if err != nil {
		return nil, err
	}
	return &Cell{c: c}, nil
}

// NewClient attaches a new client to the cell.
func (c *Cell) NewClient(opt ClientOptions) *Client {
	cl := c.c.NewClient(client.Options{
		Strategy:         opt.Strategy.internal(),
		Retries:          opt.Retries,
		TouchBatch:       opt.TouchBatch,
		NearCacheEntries: opt.NearCacheEntries,
		HotSteer:         opt.HotSteer,
		HotSpread:        opt.HotSpread,
	})
	return &Client{cl: cl}
}

// ServeTCP exposes the cell's RPC surface on a real TCP socket and
// returns the gateway (close it to stop). External processes use
// rpc.DialTCP and the proto message schemas against it.
func (c *Cell) ServeTCP(addr string) (io.Closer, error) {
	return c.c.ServeTCP(addr)
}

// RecoveredKeys reports how many keys the cell's tasks loaded from their
// durable checkpoints and journals at startup (0 without Options.DataDir,
// or on a first start). Lets an operator confirm a restarted process came
// back warm.
func (c *Cell) RecoveredKeys() uint64 {
	var n uint64
	for _, b := range c.c.Nodes() {
		n += b.RecoveryStatsSnapshot().RecoveredKeys
	}
	return n
}

// NewWANClient attaches a client in a remote region: every lookup travels
// the RPC path with oneWay of added WAN latency per delivery (Table 1's
// "WAN access via RPC").
func (c *Cell) NewWANClient(opt ClientOptions, oneWay time.Duration) *Client {
	cl := c.c.NewWANClient(client.Options{
		Retries:    opt.Retries,
		TouchBatch: opt.TouchBatch,
	}, oneWay)
	return &Client{cl: cl}
}

// LoadImmutable bulk-loads an immutable corpus and seals the cell (§6.4):
// subsequent client mutations fail. Use with Mode R2Immutable.
func (c *Cell) LoadImmutable(ctx context.Context, items map[string][]byte) error {
	return c.c.LoadImmutable(ctx, items)
}

// PlannedMaintenance migrates a shard to a warm spare ahead of
// maintenance, returning the spare's address (§6.1).
func (c *Cell) PlannedMaintenance(ctx context.Context, shard int) (string, error) {
	return c.c.PlannedMaintenance(ctx, shard)
}

// CompleteMaintenance moves a shard back from its spare to primaryAddr.
func (c *Cell) CompleteMaintenance(ctx context.Context, shard int, primaryAddr string) error {
	return c.c.CompleteMaintenance(ctx, shard, primaryAddr)
}

// Resize changes the cell's logical shard count online. The cell stays
// live throughout: GETs keep running on RMA and no acknowledged write is
// lost. Growth claims idle warm spares for the new shards; a shrink
// returns the trailing shards' tasks to spare duty. Shards move one at a
// time through a two-epoch config (bulk stream → seal → catch-up delta →
// flip), so the transition's client cost is bounded to retries, never
// data.
func (c *Cell) Resize(ctx context.Context, newShards int) error {
	return c.c.Resize(ctx, newShards)
}

// Shards returns the cell's current logical shard count.
func (c *Cell) Shards() int { return c.c.Shards() }

// Crash simulates an unplanned failure of a shard's task.
func (c *Cell) Crash(shard int) { c.c.Crash(shard) }

// Restart brings a crashed shard back empty and runs post-restart repairs
// (§5.4).
func (c *Cell) Restart(ctx context.Context, shard int) error { return c.c.Restart(ctx, shard) }

// RestartWarm brings a crashed shard back recovered from its durable
// checkpoint + journal (Options.DataDir) and self-validates it back into
// the quorum; cold like Restart when the cell has no data directory.
func (c *Cell) RestartWarm(ctx context.Context, shard int) error { return c.c.RestartWarm(ctx, shard) }

// RepairAll runs one cohort-scan repair sweep, returning repairs issued.
func (c *Cell) RepairAll(ctx context.Context) (int, error) { return c.c.RepairAll(ctx) }

// StartRepairLoop runs periodic repair sweeps until StopRepairLoop.
func (c *Cell) StartRepairLoop(interval time.Duration) { c.c.StartRepairLoop(interval) }

// StopRepairLoop halts the periodic sweep.
func (c *Cell) StopRepairLoop() { c.c.StopRepairLoop() }

// SetAntagonist applies competing load (0..1 of NIC bandwidth) to the
// host serving a shard (§7.2.1).
func (c *Cell) SetAntagonist(shard int, frac float64) { c.c.SetAntagonist(shard, frac) }

// MemoryBytes reports the cell's total populated backend DRAM (Figure 3).
func (c *Cell) MemoryBytes() int { return c.c.TotalMemoryBytes() }

// CompactAll triggers non-disruptive downsizing restarts (§4.1).
func (c *Cell) CompactAll(slack float64) { c.c.CompactAll(slack) }

// Stats summarizes backend-side behaviour.
type Stats struct {
	Sets, SetsApplied uint64
	Gets              uint64
	Evictions         uint64
	IndexResizes      uint64
	DataGrows         uint64
	RepairsIssued     uint64
	MemoryBytes       int
}

// Stats returns a snapshot of cell-wide counters.
func (c *Cell) Stats() Stats {
	agg := c.c.AggregateCounters()
	return Stats{
		Sets:          agg.Sets,
		SetsApplied:   agg.SetsApplied,
		Gets:          agg.Gets,
		Evictions:     agg.CapacityEvictions + agg.AssocEvictions,
		IndexResizes:  agg.IndexResizes,
		DataGrows:     agg.DataGrows,
		RepairsIssued: agg.RepairsIssued,
		MemoryBytes:   c.c.TotalMemoryBytes(),
	}
}

// Tracer exposes the cell-wide op tracer: per-kind/per-transport latency
// histograms, recent-op ring, exemplars, and the retained slow-op log.
// Remote tools read the same data over the Debug RPC (cmstat -trace).
func (c *Cell) Tracer() *trace.Tracer { return c.c.Tracer }

// Chaos exposes the cell's fault-injection plane: one seeded registry
// for every hazard class (crashes, partitions, packet loss, RPC failure
// rates, engine brownouts, memory corruption, config staleness) plus the
// scenario presets ("brownout", "partition-heal", "corruption-soak",
// "rolling-crash"). See DESIGN.md's fault-model section.
func (c *Cell) Chaos() *chaos.Plane { return c.c.Chaos() }

// ChaosEngine builds a schedule-driven fault engine for a named preset;
// the same (preset, seed) pair always produces the same schedule.
func (c *Cell) ChaosEngine(preset string, seed uint64) (*chaos.Engine, error) {
	return c.c.ChaosEngine(preset, seed)
}

// Health exposes the cell's fleet health plane: per-op-class SLOs with
// multi-window burn-rate alerting, fed by the E2E probers and served to
// remote tooling over the Health RPC. Lazily built on first use.
func (c *Cell) Health() *health.Plane { return c.c.Health() }

// Prober exposes the cell's E2E prober: canary clients — one per lookup
// strategy the transport supports — sweeping the reserved probe-key
// namespace with the full GET/SET/CAS/ERASE mix. Drive Round from the
// workload loop so probe cadence rides the cell's virtual clock.
func (c *Cell) Prober() *health.Prober { return c.c.Prober() }

// SetEngineDelay injects extra per-command service time into the NIC
// serving a shard — fault injection for the slow-op tracing plane.
//
// Deprecated: this is the chaos plane's brownout actuator; inject via
// Chaos().Brownout so the hazard is seeded and counted.
func (c *Cell) SetEngineDelay(shard int, delay time.Duration) {
	c.c.Chaos().Brownout(shard, uint64(delay.Nanoseconds()))
}

// Internal exposes the underlying cell for the benchmark harness. It is
// not part of the stable API.
func (c *Cell) Internal() *cell.Cell { return c.c }

// Client is a CliqueMap client handle. Safe for concurrent use.
type Client struct {
	cl *client.Client
}

// Get looks up key, returning its value and whether it was a hit.
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return c.cl.Get(ctx, key)
}

// GetBatch looks up many keys as one logical, overlapped operation.
func (c *Client) GetBatch(ctx context.Context, keys [][]byte) ([][]byte, []bool, error) {
	vals, found, _, err := c.cl.GetBatch(ctx, keys)
	return vals, found, err
}

// Set installs key=value on all replicas at a fresh version.
func (c *Client) Set(ctx context.Context, key, value []byte) error {
	return c.cl.Set(ctx, key, value)
}

// SetVersioned is Set returning the nominated Version for later Cas.
func (c *Client) SetVersioned(ctx context.Context, key, value []byte) (Version, error) {
	return c.cl.SetVersioned(ctx, key, value)
}

// Erase removes key, tombstoning its version so stale SETs cannot
// resurrect it (§5.2).
func (c *Client) Erase(ctx context.Context, key []byte) error {
	return c.cl.Erase(ctx, key)
}

// Cas installs value only if the stored version equals expected,
// reporting whether the swap applied (§5.2).
func (c *Client) Cas(ctx context.Context, key, value []byte, expected Version) (bool, error) {
	return c.cl.Cas(ctx, key, value, expected)
}

// FlushTouches force-flushes pending access records (§4.2).
func (c *Client) FlushTouches(ctx context.Context) { c.cl.FlushTouches(ctx) }

// ClientStats summarizes a client's observable behaviour.
type ClientStats struct {
	Gets, Hits, Misses uint64
	Sets               uint64
	Retries            uint64
	RPCFallbacks       uint64
	Hedges, HedgeWins  uint64
	Failovers          uint64
	BudgetDenied       uint64
	NearHits           uint64
	NearStale          uint64
	SteerRPC           uint64
	GetP50, GetP99     time.Duration
}

// Stats returns a snapshot of the client's metrics.
func (c *Client) Stats() ClientStats {
	m := &c.cl.M
	return ClientStats{
		Gets:         m.Gets.Value(),
		Hits:         m.Hits.Value(),
		Misses:       m.Misses.Value(),
		Sets:         m.Sets.Value(),
		Retries:      m.RetryCount(),
		RPCFallbacks: m.RPCFallbacks.Value(),
		Hedges:       m.Hedges.Value(),
		HedgeWins:    m.HedgeWins.Value(),
		Failovers:    m.Failovers.Value(),
		BudgetDenied: m.BudgetDenied.Value(),
		NearHits:     m.NearHits.Value(),
		NearStale:    m.NearStale.Value(),
		SteerRPC:     m.SteerRPC.Value(),
		GetP50:       time.Duration(m.GetLatency.Percentile(50)),
		GetP99:       time.Duration(m.GetLatency.Percentile(99)),
	}
}

// GetLatencyHistogram exposes the client's GET latency histogram for
// experiment harnesses.
func (c *Client) GetLatencyHistogram() *stats.Histogram { return &c.cl.M.GetLatency }

// Internal exposes the underlying client for the benchmark harness. Not
// part of the stable API.
func (c *Client) Internal() *client.Client { return c.cl }

// String renders cell stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("sets=%d applied=%d evictions=%d resizes=%d grows=%d repairs=%d mem=%s",
		s.Sets, s.SetsApplied, s.Evictions, s.IndexResizes, s.DataGrows, s.RepairsIssued,
		fmtBytes(s.MemoryBytes))
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// Ads-style serving (§7.1): latency-critical batched lookups feeding an
// auction, with a background backfill refreshing the corpus.
//
// Advertising data is keyed by topic and fetched on demand when an auction
// runs; late responses are discarded, so the example enforces an auction
// deadline and reports how many auctions met it. Batches reach tens to
// hundreds of keys in the tail, which makes the client's downlink (incast)
// the limiting factor — the same effect §7.2.2 documents.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cliquemap"
	"cliquemap/internal/workload"
)

const (
	topics          = 2000
	auctions        = 300
	auctionDeadline = 5 * time.Millisecond // modelled, per §7.1's ~5ms tail
)

func main() {
	cell, err := cliquemap.NewCell(cliquemap.Options{
		Shards: 5,
		Spares: 1,
		Mode:   cliquemap.R32,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The backfill pipeline loads advertising data per topic.
	backfill := cell.NewClient(cliquemap.ClientOptions{})
	sizes := workload.AdsSizes(1)
	fmt.Printf("backfilling %d topics...\n", topics)
	for i := uint64(0); i < topics; i++ {
		if err := backfill.Set(ctx, []byte(workload.Key(i)), workload.ValueGen(i, sizes.Next())); err != nil {
			log.Fatal(err)
		}
	}

	// The serving path: each auction fetches a batch of topics.
	server := cell.NewClient(cliquemap.ClientOptions{
		Strategy:   cliquemap.LookupSCAR,
		TouchBatch: 128, // feed recency to the backends' eviction policy
	})
	batches := workload.AdsBatches(2)
	keys := workload.NewZipfKeys(topics, 1.2, 3)

	met, missed := 0, 0
	var worst time.Duration
	for a := 0; a < auctions; a++ {
		bs := batches.Next()
		batch := make([][]byte, bs)
		for i := range batch {
			batch[i] = []byte(workload.Key(keys.Next()))
		}
		_, found, err := server.GetBatch(ctx, batch)
		if err != nil {
			log.Fatal(err)
		}
		hits := 0
		for _, f := range found {
			if f {
				hits++
			}
		}
		st := server.Stats()
		latency := st.GetP99 // conservative: tail of the batch's lookups
		if latency > worst {
			worst = latency
		}
		if latency <= auctionDeadline {
			met++
		} else {
			missed++
		}
		if a%100 == 0 {
			fmt.Printf("auction %3d: batch=%3d hits=%3d modelled p99=%v\n", a, bs, hits, latency)
		}
	}
	server.FlushTouches(ctx)

	st := server.Stats()
	fmt.Printf("\n%d auctions: %d met the %v deadline, %d missed (worst %v)\n",
		auctions, met, auctionDeadline, missed, worst)
	fmt.Printf("lookups: %d (%d hits), modelled p50=%v p99=%v, retries=%d\n",
		st.Gets, st.Hits, st.GetP50, st.GetP99, st.Retries)
	fmt.Printf("cell: %v\n", cell.Stats())
}

// Quickstart: stand up a replicated CliqueMap cell, write and read a few
// keys over RMA, and inspect the client's view of the operation.
package main

import (
	"context"
	"fmt"
	"log"

	"cliquemap"
)

func main() {
	// A cell with three backends (R=3.2: three copies, quorum of two) and
	// one warm spare, served over the simulated Pony Express software NIC.
	cell, err := cliquemap.NewCell(cliquemap.Options{
		Shards: 3,
		Spares: 1,
		Mode:   cliquemap.R32,
	})
	if err != nil {
		log.Fatal(err)
	}

	// SCAR lookups complete in a single network round trip; mutations are
	// RPCs to all three replicas.
	client := cell.NewClient(cliquemap.ClientOptions{Strategy: cliquemap.LookupSCAR})
	ctx := context.Background()

	if err := client.Set(ctx, []byte("user:42"), []byte(`{"name":"ada"}`)); err != nil {
		log.Fatal(err)
	}
	value, found, err := client.Get(ctx, []byte("user:42"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET user:42 -> found=%v value=%s\n", found, value)

	// Conditional update: CAS against the version a SET nominated.
	v1, err := client.SetVersioned(ctx, []byte("counter"), []byte("1"))
	if err != nil {
		log.Fatal(err)
	}
	swapped, err := client.Cas(ctx, []byte("counter"), []byte("2"), v1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CAS counter 1->2 applied=%v\n", swapped)

	// Erase tombstones the version so stale writers cannot resurrect it.
	if err := client.Erase(ctx, []byte("user:42")); err != nil {
		log.Fatal(err)
	}
	_, found, _ = client.Get(ctx, []byte("user:42"))
	fmt.Printf("after ERASE, found=%v\n", found)

	st := client.Stats()
	fmt.Printf("client: %d gets (%d hits), %d sets, p50=%v\n",
		st.Gets, st.Hits, st.Sets, st.GetP50)
	fmt.Printf("cell:   %v\n", cell.Stats())
}

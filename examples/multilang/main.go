// Multi-language access (§6.2): a "Python" (or Java/Go) program reaching
// CliqueMap through the subprocess shim — a lightweight language shim that
// launches the primary client in a child process and speaks length-
// prefixed frames over pipes, instead of reimplementing the RMA client
// per language.
//
// The example builds cmd/cmshimhost on the fly, launches it as a real OS
// subprocess, and drives it through the shim client with each language's
// calibrated cost profile, printing the per-language overhead the paper's
// Figure 6 quantifies.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"cliquemap/internal/shim"
)

func main() {
	bin := filepath.Join(os.TempDir(), fmt.Sprintf("cmshimhost-%d", os.Getpid()))
	build := exec.Command("go", "build", "-o", bin, "cliquemap/cmd/cmshimhost")
	if out, err := build.CombinedOutput(); err != nil {
		log.Fatalf("building shim host: %v\n%s", err, out)
	}
	defer os.Remove(bin)

	ctx := context.Background()
	for _, lang := range []string{"java", "go", "py"} {
		prof, err := shim.ProfileFor(lang)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := shim.Launch(ctx, prof, bin, "-shards", "3", "-mode", "r32")
		if err != nil {
			log.Fatalf("%s: launch: %v", lang, err)
		}

		if err := sp.Client.Ping(); err != nil {
			log.Fatalf("%s: ping: %v", lang, err)
		}
		const ops = 200
		start := time.Now()
		for i := 0; i < ops; i++ {
			k := []byte(fmt.Sprintf("%s-key-%d", lang, i))
			if _, err := sp.Client.Set(k, []byte("value")); err != nil {
				log.Fatalf("%s: set: %v", lang, err)
			}
			if _, found, _, err := sp.Client.Get(k); err != nil || !found {
				log.Fatalf("%s: get: %v %v", lang, found, err)
			}
		}
		wall := time.Since(start)
		fmt.Printf("%-5s %4d ops over the pipe in %8v  (+%5.1fus modelled shim latency/op)\n",
			lang, 2*ops, wall.Round(time.Millisecond),
			float64(sp.Client.SimLatencyNs())/float64(sp.Client.OpsDone())/1000)
		sp.Close()
	}
	fmt.Println("\none client implementation, three languages — no per-language RMA code (§6.2)")
}

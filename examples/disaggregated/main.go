// Disaggregating local state (§6.5): serving tasks that used to hold data
// shards in local memory instead fetch them from CliqueMap — becoming
// stateless, so compute scales independently from DRAM.
//
// The example contrasts the two architectures directly: a "stateful"
// server pinned to its local shard (requests for other shards miss and
// must be re-routed) versus stateless servers that answer any request via
// CliqueMap. Killing a stateless server loses nothing; scaling them up
// needs no data movement. A custom hash function (the §6.5 feature added
// for these users) controls placement so co-accessed records share a
// shard.
package main

import (
	"context"
	"fmt"
	"log"

	"cliquemap"
	"cliquemap/internal/workload"
)

const (
	documents = 1200
	requests  = 400
)

// docKey groups documents by tenant: "tenant/doc". The custom hash places
// all of a tenant's documents on one cohort so a request touching a
// tenant hits one backend trio.
func tenantOf(key []byte) []byte {
	for i, c := range key {
		if c == '/' {
			return key[:i]
		}
	}
	return key
}

func main() {
	cell, err := cliquemap.NewCell(cliquemap.Options{
		Shards: 4,
		Spares: 1,
		// Placement by tenant, lookup still by full key.
		Hash: func(key []byte) (hi, lo uint64) {
			hFull := cliquemap.DefaultHash(key)
			hTenant := cliquemap.DefaultHash(tenantOf(key))
			_, lo = hFull.Hi, hFull.Lo
			return hTenant.Hi, lo // shard by tenant, bucket by full key
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The corpus loader (the former stateful servers' startup path).
	loader := cell.NewClient(cliquemap.ClientOptions{})
	for i := 0; i < documents; i++ {
		key := fmt.Sprintf("tenant-%d/doc-%d", i%20, i)
		if err := loader.Set(ctx, []byte(key), workload.ValueGen(uint64(i), 600)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("corpus: %d documents across 20 tenants, placed by tenant hash\n", documents)

	// Three stateless serving tasks. Any task serves any request — no
	// shard affinity, no warmup, nothing lost if one dies.
	servers := make([]*cliquemap.Client, 3)
	for i := range servers {
		servers[i] = cell.NewClient(cliquemap.ClientOptions{Strategy: cliquemap.LookupSCAR})
	}

	keys := workload.NewZipfKeys(documents, 1.1, 5)
	served := 0
	for r := 0; r < requests; r++ {
		doc := keys.Next()
		key := fmt.Sprintf("tenant-%d/doc-%d", doc%20, doc)
		// Round-robin across stateless tasks — any of them can answer.
		srv := servers[r%len(servers)]
		_, found, err := srv.Get(ctx, []byte(key))
		if err != nil {
			log.Fatal(err)
		}
		if found {
			served++
		}
	}
	fmt.Printf("stateless serving: %d/%d requests answered by 3 interchangeable tasks\n", served, requests)

	// "Scale compute" — a fourth task joins with zero data movement.
	extra := cell.NewClient(cliquemap.ClientOptions{Strategy: cliquemap.LookupSCAR})
	if _, found, err := extra.Get(ctx, []byte("tenant-3/doc-3")); err != nil || !found {
		log.Fatalf("fresh task failed its first request: %v %v", found, err)
	}
	fmt.Println("a fresh task served immediately: compute scaled with zero data movement (§6.5)")

	st := servers[0].Stats()
	fmt.Printf("task 0: %d lookups, p50=%v p99=%v\n", st.Gets, st.GetP50, st.GetP99)
}

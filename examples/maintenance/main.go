// Maintenance walkthrough (§6.1, §5.4): planned binary rollouts hidden by
// warm spares, and an unplanned crash healed by quorum repairs — all while
// a client keeps reading.
package main

import (
	"context"
	"fmt"
	"log"

	"cliquemap"
	"cliquemap/internal/workload"
)

const corpus = 500

func main() {
	cell, err := cliquemap.NewCell(cliquemap.Options{
		Shards: 3,
		Spares: 1,
		Mode:   cliquemap.R32,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	client := cell.NewClient(cliquemap.ClientOptions{Strategy: cliquemap.Lookup2xR})

	for i := uint64(0); i < corpus; i++ {
		if err := client.Set(ctx, []byte(workload.Key(i)), workload.ValueGen(i, 512)); err != nil {
			log.Fatal(err)
		}
	}
	verify := func(phase string) {
		ok := 0
		for i := uint64(0); i < corpus; i++ {
			if _, found, err := client.Get(ctx, []byte(workload.Key(i))); err == nil && found {
				ok++
			}
		}
		st := client.Stats()
		fmt.Printf("%-28s %d/%d keys readable (retries so far: %d)\n", phase, ok, corpus, st.Retries)
	}

	verify("baseline:")

	// ---- Planned maintenance: migrate shard 0 to the warm spare. -------
	primary := cell.Internal().Store.Get().AddrFor(0)
	spare, err := cell.PlannedMaintenance(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanned maintenance: shard 0 moved %s -> %s\n", primary, spare)
	verify("during rollout:")

	// The "upgraded" primary returns; data streams back.
	if err := cell.CompleteMaintenance(ctx, 0, primary); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollout complete: shard 0 back on %s\n", primary)
	verify("after rollout:")

	// ---- Unplanned failure: crash shard 1, then restart + repair. ------
	fmt.Println("\ncrashing shard 1 (unplanned)")
	cell.Crash(1)
	verify("one replica down:") // quorum of the remaining two serves

	if err := cell.Restart(ctx, 1); err != nil {
		log.Fatal(err)
	}
	st := cell.Stats()
	fmt.Printf("restarted shard 1; repairs issued: %d\n", st.RepairsIssued)
	verify("after repair:")

	fmt.Printf("\ncell: %v\n", st)
}

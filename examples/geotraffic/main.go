// Geo-style serving at fleet scale (§2, §7.1): three regional cells
// behind the federation tier's consistent-hash router, with road-segment
// traffic estimates read by diurnal query streams that follow the sun —
// each region peaks a third of a synthetic day apart — while a model
// pipeline continuously refreshes the corpus through the tier.
//
// The example compresses each day into a few hundred milliseconds and
// walks the three production events the tier exists for:
//
//   - day 1: steady state — every region serves its diurnal curve, reads
//     for remotely-owned segments ride the stale-bounded follower path;
//   - day 2: the EU cell is resized 3→4 shards mid-day (riding the
//     two-epoch resize protocol) and re-weighted to match, then a US
//     brownout pages its health plane and the router demotes it with
//     hysteresis — traffic shifts with bounded key movement;
//   - day 3: the Asia cell is killed outright; the router routes around
//     it and every acked write stays readable.
//
// The process exits non-zero if any invariant breaks: an acked write
// lost, a rebalance moving more than ~1/N of the keyspace, or keys
// moving between cells the event did not touch.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"cliquemap"
	"cliquemap/internal/health"
	"cliquemap/internal/workload"
)

const (
	segments = 1200
	dayWall  = 300 * time.Millisecond // one compressed day
	peakQPS  = 300                    // route queries per day per region at peak
)

var regions = []string{"us", "eu", "asia"}

func main() {
	// Health windows shrunk to the compressed-day scale so a brownout
	// pages within a few prober rounds (the production defaults span
	// virtual hours).
	tinyHealth := health.Config{
		FastWindowNs: uint64(20 * time.Millisecond),
		SlowWindowNs: uint64(200 * time.Millisecond),
		BucketNs:     uint64(1 * time.Millisecond),
	}
	var cellOpts []cliquemap.TierCellOptions
	for _, r := range regions {
		cellOpts = append(cellOpts, cliquemap.TierCellOptions{
			Name: r,
			Options: cliquemap.Options{
				Shards: 3, Spares: 2, Mode: cliquemap.R32,
				Eviction: "arc", // road segments have strong recency+frequency structure
				Health:   tinyHealth,
			},
		})
	}
	tier, err := cliquemap.NewTier(cliquemap.TierOptions{Cells: cellOpts})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The model pipeline owns writes; it routes through the tier and
	// records the last acked value per segment — the oracle for the
	// zero-lost-acked-writes audit.
	updater, err := tier.NewClient(cliquemap.TierClientOptions{Local: "us"})
	if err != nil {
		log.Fatal(err)
	}
	acked := make(map[int]string, segments)
	refresh := func(i int, tag string) {
		v := fmt.Sprintf("%s-seg%d", tag, i)
		if err := updater.Set(ctx, []byte(workload.Key(uint64(i))), []byte(v)); err == nil {
			acked[i] = v
		}
	}
	for i := 0; i < segments; i++ {
		refresh(i, "seed")
	}

	// One navigation-serving client per region, co-located with its
	// cell: remotely-owned segments ride the follower path, bounded at
	// 40ms staleness on a corpus refreshed far slower than that matters.
	readers := map[string]*cliquemap.TierClient{}
	diurnals := map[string]workload.Diurnal{}
	for i, r := range regions {
		rd, err := tier.NewClient(cliquemap.TierClientOptions{
			Local: r, FollowerReads: true, StaleBound: 40 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		readers[r] = rd
		// The sun: each region's peak lands a third of a day after the
		// previous one's.
		diurnals[r] = workload.Diurnal{
			Base: peakQPS, PeakRatio: 3, Day: dayWall,
			Phase: float64(i) / float64(len(regions)),
		}
	}
	keys := workload.NewZipfKeys(segments, 1.05, 11)
	start := time.Now()

	// runDay drives one compressed day of sun-following load plus the
	// steady refresh stream.
	runDay := func(day int) {
		dayStart := time.Now()
		queries, updates := 0, 0
		seg := 0
		for time.Since(dayStart) < dayWall {
			for _, r := range regions {
				rate := diurnals[r].Rate(time.Since(start))
				// Each region reads in proportion to its local hour.
				n := int(rate/float64(peakQPS)*3 + 0.5)
				for q := 0; q < n; q++ {
					key := []byte(workload.Key(keys.Next()))
					if _, _, err := readers[r].Get(ctx, key); err != nil {
						log.Fatalf("day %d: %s read: %v", day, r, err)
					}
					queries++
				}
			}
			refresh(seg%segments, fmt.Sprintf("d%d", day))
			seg++
			updates++
			time.Sleep(time.Millisecond)
		}
		fmt.Printf("day %d: %4d route queries, %4d segment updates\n", day, queries, updates)
	}

	// owners snapshots the ring's view of every segment.
	owners := func() map[int]string {
		m := make(map[int]string, segments)
		for i := 0; i < segments; i++ {
			m[i] = tier.Owner([]byte(workload.Key(uint64(i))))
		}
		return m
	}
	// auditMove verifies a rebalance event: ≤ maxFrac of segments moved,
	// and every move came from the affected cell.
	auditMove := func(event string, before, after map[int]string, from string, maxFrac float64) {
		moved := 0
		for i := 0; i < segments; i++ {
			if before[i] != after[i] {
				moved++
				if before[i] != from {
					fmt.Printf("FAIL: %s moved segment %d from untouched cell %s\n", event, i, before[i])
					os.Exit(1)
				}
			}
		}
		frac := float64(moved) / segments
		fmt.Printf("%s: remapped %.1f%% of segments (bound %.1f%%), all from %s\n",
			event, 100*frac, 100*maxFrac, from)
		if frac > maxFrac {
			fmt.Printf("FAIL: %s moved %.3f of keyspace, bound %.3f\n", event, frac, maxFrac)
			os.Exit(1)
		}
	}

	// Day 1: steady state.
	runDay(1)

	// Day 2, first half: EU gains capacity mid-day — an online 3→4 shard
	// resize inside the cell, then a matching router re-weight. The
	// re-weight moves keys INTO eu only; intra-cell movement is the
	// resize protocol's business, invisible up here.
	if err := tier.Cell("eu").Resize(ctx, 4); err != nil {
		log.Fatalf("eu resize: %v", err)
	}
	before := owners()
	tier.SetWeight("eu", 4.0/3)
	after := owners()
	moved := 0
	for i := 0; i < segments; i++ {
		if before[i] != after[i] {
			moved++
			if after[i] != "eu" {
				fmt.Printf("FAIL: eu re-weight moved segment %d to %s\n", i, after[i])
				os.Exit(1)
			}
		}
	}
	fmt.Printf("eu resized 3->4 shards, re-weighted 1.00->1.33: pulled in %.1f%% of segments\n",
		100*float64(moved)/segments)
	runDay(2)

	// Day 2, second half: a US brownout pages its health plane; the
	// router demotes it with hysteresis and sheds most of its range.
	usChaos := tier.Cell("us").Chaos()
	for s := 0; s < 3; s++ {
		usChaos.Brownout(s, uint64(2*time.Millisecond))
	}
	before = owners()
	demoted := false
	for round := 0; round < 60 && !demoted; round++ {
		tier.ProbeRound(ctx)
		for _, c := range tier.Snapshot().Cells {
			if c.Name == "us" && c.Demoted {
				demoted = true
			}
		}
	}
	if !demoted {
		fmt.Println("FAIL: paged us cell was never demoted")
		os.Exit(1)
	}
	// The demotion sheds ~3/4 of us's ~29% share; the 1/N+slack bound
	// still holds because only us's own arcs move.
	auditMove("us demotion", before, owners(), "us", 1.0/3+0.05)

	// Heal: probes must run clean for HealHold rounds before the router
	// restores full weight — no flapping on the first good round.
	for s := 0; s < 3; s++ {
		usChaos.Brownout(s, 0)
	}
	restored := false
	for round := 0; round < 400 && !restored; round++ {
		tier.ProbeRound(ctx)
		for _, c := range tier.Snapshot().Cells {
			if c.Name == "us" && !c.Demoted && c.WeightMilli == 1000 {
				restored = true
			}
		}
	}
	if !restored {
		fmt.Println("FAIL: healed us cell never restored to full weight")
		os.Exit(1)
	}
	fmt.Printf("us healed and restored to full weight (ring v%d)\n", tier.RingVersion())

	// Day 3: Asia dies. The writer keeps streaming; failed ops push the
	// cell over the dead threshold and re-route, so every ack still
	// names a live owner.
	before = owners()
	for s := 0; s < 3; s++ {
		tier.Cell("asia").Crash(s)
	}
	runDay(3)
	asiaDead := false
	for _, c := range tier.Snapshot().Cells {
		if c.Name == "asia" && c.State == "dead" && c.WeightMilli == 0 {
			asiaDead = true
		}
	}
	if !asiaDead {
		fmt.Println("FAIL: killed asia cell not marked dead")
		os.Exit(1)
	}
	auditMove("asia kill", before, owners(), "asia", 1.0/3+0.05)

	// Full refresh so every segment's last ack postdates the kill, then
	// the audit: every acked write must read back exactly (through the
	// updater — no follower cache in the loop).
	for i := 0; i < segments; i++ {
		refresh(i, "final")
	}
	lost := 0
	for i, want := range acked {
		val, found, err := updater.Get(ctx, []byte(workload.Key(uint64(i))))
		if err != nil || !found || string(val) != want {
			lost++
		}
	}
	if lost > 0 {
		fmt.Printf("FAIL: %d acked writes lost after asia kill\n", lost)
		os.Exit(1)
	}

	st := readers["eu"].Stats()
	fmt.Printf("\nzero acked writes lost across resize, demotion, and cell kill\n")
	fmt.Printf("eu reader: %d ops, follower hits=%d revalidations=%d refreshes=%d misses=%d\n",
		st.Ops, st.FollowerHits, st.FollowerRevalids, st.FollowerRefreshes, st.FollowerMisses)
	var ops, reroutes, failovers uint64
	for _, r := range regions {
		s := readers[r].Stats()
		ops, reroutes, failovers = ops+s.Ops, reroutes+s.Reroutes, failovers+s.DeadFailovers
	}
	u := updater.Stats()
	ops, reroutes, failovers = ops+u.Ops, reroutes+u.Reroutes, failovers+u.DeadFailovers
	fmt.Printf("all clients: %d ops, reroutes=%d dead-failovers=%d\n", ops, reroutes, failovers)
	fmt.Printf("final ring v%d\n", tier.RingVersion())
}

// Geo-style serving (§7.1): road-segment traffic estimates read by a
// diurnal query stream while a model pipeline continuously refreshes the
// corpus — reads and writes come from different jobs and never coordinate.
//
// The example compresses a day into a few hundred milliseconds and shows
// the paper's headline property: despite a 3× swing in GET rate and a
// steady background update stream, lookup tail latency barely moves.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cliquemap"
	"cliquemap/internal/workload"
)

const (
	segments = 3000
	dayWall  = 400 * time.Millisecond // one compressed day
	days     = 3
	peakaps  = 400 // GET batches per day at peak
)

func main() {
	cell, err := cliquemap.NewCell(cliquemap.Options{
		Shards:   4,
		Spares:   1,
		Mode:     cliquemap.R32,
		Eviction: "arc", // road segments have strong recency+frequency structure
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The model pipeline owns writes.
	updater := cell.NewClient(cliquemap.ClientOptions{})
	sizes := workload.GeoSizes(7)
	for i := uint64(0); i < segments; i++ {
		if err := updater.Set(ctx, []byte(workload.Key(i)), workload.ValueGen(i, sizes.Next())); err != nil {
			log.Fatal(err)
		}
	}

	// Navigation serving reads batches of segments along a route.
	reader := cell.NewClient(cliquemap.ClientOptions{
		Strategy:   cliquemap.LookupSCAR,
		TouchBatch: 64,
	})
	batches := workload.GeoBatches(9)
	keys := workload.NewZipfKeys(segments, 1.05, 11)
	diurnal := workload.Diurnal{Base: peakaps, PeakRatio: 3, Day: dayWall}

	start := time.Now()
	updates := uint64(0)
	for day := 0; day < days; day++ {
		dayStart := time.Now()
		queries := 0
		for time.Since(dayStart) < dayWall {
			rate := diurnal.Rate(time.Since(start))
			// Route lookup: one batch of segments.
			bs := batches.Next()
			batch := make([][]byte, bs)
			for i := range batch {
				batch[i] = []byte(workload.Key(keys.Next()))
			}
			if _, _, err := reader.GetBatch(ctx, batch); err != nil {
				log.Fatal(err)
			}
			queries++
			// The updater streams refreshed estimates at a steady pace,
			// unaffected by the read diurnal.
			seg := keys.Next()
			if err := updater.Set(ctx, []byte(workload.Key(seg)), workload.ValueGen(seg, sizes.Next())); err != nil {
				log.Fatal(err)
			}
			updates++
			// Pace queries to the diurnal target rate.
			time.Sleep(dayWall / time.Duration(rate+1))
		}
		st := reader.Stats()
		fmt.Printf("day %d: %4d route queries, %5d segment updates, GET p50=%v p99=%v\n",
			day+1, queries, updates, st.GetP50, st.GetP99)
	}

	st := reader.Stats()
	fmt.Printf("\ntotals: %d lookups (%.1f%% hits), %d updates, retries=%d\n",
		st.Gets, 100*float64(st.Hits)/float64(st.Gets), updates, st.Retries)
	fmt.Printf("cell: %v\n", cell.Stats())
}

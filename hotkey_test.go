package cliquemap

// End-to-end tests for the hot-key adaptive serving loop: server-side
// promotion (heat sketch → promoted set → all-replica residency),
// piggybacked promotion learning on Touch acks, the client near-cache
// with quorum revalidation, and per-key transport steering.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// hammerUntilPromoted drives GETs on key until the client has learned a
// promotion (or the attempt budget runs out). Touch batches flush every
// TouchBatch hits, the backend re-evaluates its promoted set as those
// touches arrive, and the ack piggybacks the set back.
func hammerUntilPromoted(t *testing.T, cl *Client, key []byte, budget int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < budget; i++ {
		if _, ok, err := cl.Get(ctx, key); err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if cl.Internal().PromotedKeys() > 0 {
			return
		}
	}
	t.Fatalf("key never promoted after %d gets", budget)
}

// TestHotKeyNearCacheEndToEnd: hammering one key promotes it on the
// server, the promotion rides a Touch ack back, and subsequent GETs are
// served from the near-cache — validated by an index-only quorum round,
// still returning the correct value.
func TestHotKeyNearCacheEndToEnd(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Mode: R32})
	cl := c.NewClient(ClientOptions{TouchBatch: 8, NearCacheEntries: 64})
	ctx := context.Background()
	key := []byte("hot-celebrity")
	if err := cl.Set(ctx, key, []byte("payload-v1")); err != nil {
		t.Fatal(err)
	}
	hammerUntilPromoted(t, cl, key, 2000)

	// The next GET fills the near-cache; the ones after serve from it.
	for i := 0; i < 10; i++ {
		v, ok, err := cl.Get(ctx, key)
		if err != nil || !ok || string(v) != "payload-v1" {
			t.Fatalf("post-promotion get: %q %v %v", v, ok, err)
		}
	}
	st := cl.Stats()
	if st.NearHits == 0 {
		t.Fatalf("no near-cache hits after promotion: %+v", st)
	}
}

// TestNearCacheStalenessProperty: the near-cache never serves a value a
// read quorum no longer vouches for. With a single sequential writer,
// every read issued after an acked overwrite must observe that overwrite
// (the revalidation quorum intersects the write's ack quorum), and an
// acked erase must read as a miss — never the cached corpse.
func TestNearCacheStalenessProperty(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Mode: R32})
	reader := c.NewClient(ClientOptions{TouchBatch: 8, NearCacheEntries: 64})
	writer := c.NewClient(ClientOptions{})
	ctx := context.Background()
	key := []byte("hot-mutating")
	if err := writer.Set(ctx, key, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	hammerUntilPromoted(t, reader, key, 2000)

	for i := 1; i <= 50; i++ {
		want := []byte(fmt.Sprintf("v%d", i))
		if err := writer.Set(ctx, key, want); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		v, ok, err := reader.Get(ctx, key)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("stale read after acked overwrite: got %q want %q (near stats: %+v)",
				v, want, reader.Stats())
		}
	}
	// With the writer quiet, reads revalidate to the same version and the
	// near-cache serves.
	for i := 0; i < 5; i++ {
		v, ok, err := reader.Get(ctx, key)
		if err != nil || !ok || !bytes.Equal(v, []byte("v50")) {
			t.Fatalf("stable read: %q %v %v", v, ok, err)
		}
	}
	st := reader.Stats()
	if st.NearStale == 0 || st.NearHits == 0 {
		t.Fatalf("property test did not exercise both near paths: %+v", st)
	}
	if err := writer.Erase(ctx, key); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if v, ok, _ := reader.Get(ctx, key); ok {
			t.Fatalf("erased hot key resurrected from near-cache: %q", v)
		}
	}
}

// TestHotChurnRace is the promote/demote churn hammer, meant for -race:
// readers shift their heat between key groups (forcing promotion epochs
// to turn over) while a single writer per key mutates continuously. The
// oracle is per-key sequence monotonicity: with one sequential writer, a
// reader's observed sequence number must never regress — a regression
// would mean the near-cache served a value a quorum had already
// superseded.
func TestHotChurnRace(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Mode: R32})
	ctx := context.Background()
	const nKeys = 4
	keys := make([][]byte, nKeys)
	seqs := make([]atomic.Uint64, nKeys)
	writer := c.NewClient(ClientOptions{})
	for k := range keys {
		keys[k] = []byte(fmt.Sprintf("churn-k%d", k))
		if err := writer.Set(ctx, keys[k], []byte(fmt.Sprintf("k%d.s0", k))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 16)

	// Writer: one goroutine owns all keys (sequential per key).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := i % nKeys
			s := seqs[k].Load() + 1
			if err := writer.Set(ctx, keys[k], []byte(fmt.Sprintf("k%d.s%d", k, s))); err == nil {
				seqs[k].Store(s)
			}
		}
	}()

	// Readers: each phase hammers a different key group so the promoted
	// set churns — keys heat up, get promoted, cool off, get demoted.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cl := c.NewClient(ClientOptions{TouchBatch: 4, NearCacheEntries: 16, HotSpread: true})
			last := make([]uint64, nKeys)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Phase-shifted focus: 3/4 of reads hit the phase's hot
				// key, the rest scatter.
				k := ((i / 400) + r) % nKeys
				if i%4 == 3 {
					k = i % nKeys
				}
				v, ok, err := cl.Get(ctx, keys[k])
				if err != nil || !ok {
					continue // churn can race an in-flight overwrite's window
				}
				var gk int
				var s uint64
				if n, serr := fmt.Sscanf(string(v), "k%d.s%d", &gk, &s); serr != nil || n != 2 || gk != k {
					fail <- fmt.Sprintf("reader %d: phantom value %q for key %d", r, v, k)
					return
				}
				if s < last[k] {
					fail <- fmt.Sprintf("reader %d: key %d seq regressed %d -> %d", r, k, last[k], s)
					return
				}
				last[k] = s
			}
		}(r)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Bounded by iterations via the writer's progress, not wall time:
	// let the writer push enough churn through, then stop everyone.
	for seqs[0].Load() < 500 {
		select {
		case msg := <-fail:
			close(stop)
			<-done
			t.Fatal(msg)
		default:
		}
	}
	close(stop)
	<-done
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
